package soundness

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/qdl"
)

// ObligationKind classifies the type rule an obligation verifies.
type ObligationKind int

// Obligation kinds.
const (
	// CaseClause is definition 5.1's local soundness of a value qualifier's
	// case clause.
	CaseClause ObligationKind = iota
	// AssignClause establishes a reference qualifier's invariant when its
	// subject is assigned a matching right-hand side.
	AssignClause
	// OnDecl establishes the invariant at variable declaration.
	OnDecl
	// Preservation shows the invariant survives an assignment to a
	// different l-value, per right-hand-side form (section 2.2.3).
	Preservation
)

func (k ObligationKind) String() string {
	switch k {
	case CaseClause:
		return "case"
	case AssignClause:
		return "assign"
	case OnDecl:
		return "ondecl"
	case Preservation:
		return "preservation"
	}
	return "?"
}

// Obligation is one proof obligation generated from a qualifier definition.
type Obligation struct {
	Kind        ObligationKind
	Qualifier   string
	ClauseIndex int // clause index for case/assign; form index for preservation
	Description string
	Formula     logic.Formula
	// Vacuous marks obligations that are trivially true because the
	// qualifier declares no invariant (flow qualifiers, section 2.1.4).
	Vacuous bool
}

// clauseVars carries the logic terms introduced for a clause's pattern
// variables.
type clauseVars struct {
	names []string              // quantified variable names
	expr  map[string]logic.Term // pattern var -> expression term
	lval  map[string]logic.Term // pattern var -> l-value term
	cval  map[string]logic.Term // Const pattern var -> integer value term
}

// introduceVars creates logic variables for a clause's declared pattern
// variables (and the subject, for patterns that mention it).
func introduceVars(d *qdl.Def, cl qdl.Clause) *clauseVars {
	cv := &clauseVars{
		expr: map[string]logic.Term{},
		lval: map[string]logic.Term{},
		cval: map[string]logic.Term{},
	}
	add := func(vp qdl.VarPat) {
		switch vp.Classifier {
		case qdl.ClassConst:
			v := "c!" + vp.Name
			cv.names = append(cv.names, v)
			cv.cval[vp.Name] = logic.V(v)
			cv.expr[vp.Name] = logic.Fn("constE", logic.V(v))
		case qdl.ClassExpr:
			v := "e!" + vp.Name
			cv.names = append(cv.names, v)
			cv.expr[vp.Name] = logic.V(v)
		case qdl.ClassLValue:
			v := "l!" + vp.Name
			cv.names = append(cv.names, v)
			cv.lval[vp.Name] = logic.V(v)
			cv.expr[vp.Name] = logic.Fn("lvExpr", logic.V(v))
		case qdl.ClassVar:
			v := "x!" + vp.Name
			cv.names = append(cv.names, v)
			cv.lval[vp.Name] = logic.Fn("varL", logic.V(v))
			cv.expr[vp.Name] = logic.Fn("lvExpr", logic.Fn("varL", logic.V(v)))
		}
	}
	for _, vp := range cl.Decls {
		add(vp)
	}
	// The subject may appear as a pattern variable ("case E of E").
	if _, ok := cv.expr[d.Subject.Name]; !ok {
		add(d.Subject)
	}
	return cv
}

var binopExprFn = map[qdl.PatOp]string{
	"*": "multE", "+": "plusE", "-": "minusE", "/": "divE", "%": "modE",
	"==": "eqE", "!=": "neE", "<": "ltE", "<=": "leE", ">": "gtE", ">=": "geE",
	"&&": "andE", "||": "orE",
}

// patternTerm builds the expression term for a clause's pattern.
func patternTerm(cl qdl.Clause, cv *clauseVars) (logic.Term, error) {
	switch pat := cl.Pat.(type) {
	case qdl.PVar:
		t, ok := cv.expr[pat.Name]
		if !ok {
			return nil, fmt.Errorf("soundness: unbound pattern variable %s", pat.Name)
		}
		return t, nil
	case qdl.PDeref:
		t, ok := cv.expr[pat.Name]
		if !ok {
			return nil, fmt.Errorf("soundness: unbound pattern variable %s", pat.Name)
		}
		return logic.Fn("lvExpr", logic.Fn("derefL", t)), nil
	case qdl.PAddrOf:
		t, ok := cv.lval[pat.Name]
		if !ok {
			return nil, fmt.Errorf("soundness: &%s requires an LValue or Var variable", pat.Name)
		}
		return logic.Fn("addrE", t), nil
	case qdl.PUnop:
		t, ok := cv.expr[pat.Name]
		if !ok {
			return nil, fmt.Errorf("soundness: unbound pattern variable %s", pat.Name)
		}
		if pat.Op == "-" {
			return logic.Fn("negE", t), nil
		}
		return logic.Fn("notE", t), nil
	case qdl.PBinop:
		l, ok := cv.expr[pat.L]
		if !ok {
			return nil, fmt.Errorf("soundness: unbound pattern variable %s", pat.L)
		}
		r, ok := cv.expr[pat.R]
		if !ok {
			return nil, fmt.Errorf("soundness: unbound pattern variable %s", pat.R)
		}
		fn, ok := binopExprFn[pat.Op]
		if !ok {
			return nil, fmt.Errorf("soundness: unsupported pattern operator %q", pat.Op)
		}
		return logic.Fn(fn, l, r), nil
	case qdl.PNull:
		return logic.Const("nullE"), nil
	case qdl.PNew:
		return nil, fmt.Errorf("soundness: new is only valid in assign clauses")
	}
	return nil, fmt.Errorf("soundness: unknown pattern %v", cl.Pat)
}

// whereHypothesis translates a clause's where-predicate into logic: a
// qualifier check becomes the checked qualifier's invariant (definition
// 5.1), and constant comparisons become arithmetic over the Const variables.
func whereHypothesis(reg *qdl.Registry, p qdl.Pred, cv *clauseVars, state logic.Term) (logic.Formula, error) {
	if p == nil {
		return logic.TrueF{}, nil
	}
	switch p := p.(type) {
	case qdl.PQual:
		qd := reg.Lookup(p.Qual)
		if qd == nil {
			return nil, fmt.Errorf("soundness: unknown qualifier %s in where clause", p.Qual)
		}
		subj, ok := cv.expr[p.Arg]
		if !ok {
			return nil, fmt.Errorf("soundness: unbound variable %s in qualifier check", p.Arg)
		}
		return valueInvariant(qd, state, subj)
	case qdl.PCmp:
		l, err := constTerm(p.L, cv)
		if err != nil {
			return nil, err
		}
		r, err := constTerm(p.R, cv)
		if err != nil {
			return nil, err
		}
		return cmpFormula(p.Op, l, r)
	case qdl.PAnd:
		l, err := whereHypothesis(reg, p.L, cv, state)
		if err != nil {
			return nil, err
		}
		r, err := whereHypothesis(reg, p.R, cv, state)
		if err != nil {
			return nil, err
		}
		return logic.Conj(l, r), nil
	case qdl.POr:
		l, err := whereHypothesis(reg, p.L, cv, state)
		if err != nil {
			return nil, err
		}
		r, err := whereHypothesis(reg, p.R, cv, state)
		if err != nil {
			return nil, err
		}
		return logic.Disj(l, r), nil
	case qdl.PNot:
		inner, err := whereHypothesis(reg, p.P, cv, state)
		if err != nil {
			return nil, err
		}
		return logic.Not{F: inner}, nil
	}
	return nil, fmt.Errorf("soundness: predicate %s not supported in where clauses", p)
}

func constTerm(t qdl.Term, cv *clauseVars) (logic.Term, error) {
	switch t := t.(type) {
	case qdl.TInt:
		return logic.Num(t.Value), nil
	case qdl.TNull:
		return nullT, nil
	case qdl.TVar:
		v, ok := cv.cval[t.Name]
		if !ok {
			return nil, fmt.Errorf("soundness: %s is not a Const variable", t.Name)
		}
		return v, nil
	case qdl.TArith:
		l, err := constTerm(t.L, cv)
		if err != nil {
			return nil, err
		}
		r, err := constTerm(t.R, cv)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case "+":
			return logic.Add(l, r), nil
		case "-":
			return logic.Sub(l, r), nil
		case "*":
			return logic.Mul(l, r), nil
		}
		return nil, fmt.Errorf("soundness: unsupported constant arithmetic %q", t.Op)
	}
	return nil, fmt.Errorf("soundness: term %s not allowed over constants", t)
}

// Obligations generates every proof obligation for a qualifier definition.
func Obligations(d *qdl.Def, reg *qdl.Registry) ([]Obligation, error) {
	switch d.Kind {
	case qdl.ValueQualifier:
		return valueObligations(d, reg)
	case qdl.RefQualifier:
		return refObligations(d, reg)
	}
	return nil, fmt.Errorf("soundness: unknown qualifier kind")
}

// valueObligations: one obligation per case clause (definition 5.1).
// Restrict clauses do not affect soundness and generate none (section
// 2.1.3).
func valueObligations(d *qdl.Def, reg *qdl.Registry) ([]Obligation, error) {
	var out []Obligation
	for i, cl := range d.Cases {
		desc := fmt.Sprintf("%s case %d: %s", d.Name, i+1, cl)
		if d.Invariant == nil {
			out = append(out, Obligation{
				Kind: CaseClause, Qualifier: d.Name, ClauseIndex: i,
				Description: desc + " (no invariant: vacuously sound)",
				Formula:     logic.TrueF{}, Vacuous: true,
			})
			continue
		}
		cv := introduceVars(d, cl)
		rho := logic.V("rho")
		pat, err := patternTerm(cl, cv)
		if err != nil {
			return nil, err
		}
		hyp, err := whereHypothesis(reg, cl.Where, cv, rho)
		if err != nil {
			return nil, err
		}
		goal, err := valueInvariant(d, rho, pat)
		if err != nil {
			return nil, err
		}
		vars := append([]string{"rho"}, cv.names...)
		out = append(out, Obligation{
			Kind: CaseClause, Qualifier: d.Name, ClauseIndex: i,
			Description: desc,
			Formula:     logic.All(vars, logic.Imp(hyp, goal)),
		})
	}
	if len(out) == 0 {
		// A flow qualifier with no case block at all (untainted): sound for
		// free via subtyping.
		out = append(out, Obligation{
			Kind: CaseClause, Qualifier: d.Name, ClauseIndex: 0,
			Description: d.Name + ": no case clauses and no invariant (flow qualifier, vacuously sound)",
			Formula:     logic.TrueF{}, Vacuous: true,
		})
	}
	return out, nil
}

// preservationForms enumerates the right-hand-side forms of the
// preservation case analysis. Under the paper's logical memory model,
// pointer arithmetic has its base pointer's value, so arithmetic forms fold
// into varRead.
var preservationForms = []string{"NULL", "new", "varRead", "derefRead", "addrOfVar"}

func refObligations(d *qdl.Def, reg *qdl.Registry) ([]Obligation, error) {
	var out []Obligation
	rho := logic.Const("RHO")
	sigma := getStore(rho)
	env := getEnv(rho)

	// The subject's location: variables locate through the environment;
	// abstract l-values get an abstract location constant.
	var locL logic.Term
	var subjectHyps []logic.Formula
	if d.Subject.Classifier == qdl.ClassVar {
		locL = sel(env, logic.Const("x!subj"))
	} else {
		locL = logic.Const("LOC_L")
		// Subject locations are locations of l-values: never NULL.
		subjectHyps = append(subjectHyps, logic.Ne(locL, nullT))
	}

	// Establishment: assign clauses.
	for i, cl := range d.Assigns {
		desc := fmt.Sprintf("%s assign %d: %s", d.Name, i+1, cl)
		v, hyps, err := rhsValue(d, reg, cl, rho, sigma)
		if err != nil {
			return nil, err
		}
		hyps = append(hyps, subjectHyps...)
		post := sto(sigma, locL, v)
		goal, err := refInvariant(d, post, env, locL)
		if err != nil {
			return nil, err
		}
		out = append(out, Obligation{
			Kind: AssignClause, Qualifier: d.Name, ClauseIndex: i,
			Description: desc,
			Formula:     logic.Imp(logic.Conj(hyps...), goal),
		})
	}

	// Establishment: ondecl.
	if d.OnDecl {
		fresh := logic.Const("FRESH_LOC")
		xname := logic.Const("x!subj")
		postEnv := sto(env, xname, fresh)
		hyps := []logic.Formula{
			// The new variable's location is fresh: nothing stored points
			// to it.
			logic.AllPats([]string{"p"}, [][]logic.Term{{sel(sigma, logic.V("p"))}},
				logic.Ne(sel(sigma, logic.V("p")), fresh)),
			logic.Ne(fresh, nullT),
		}
		if usesInitValue(d.Invariant) {
			// Ghost definition: initValue records the declared variable's
			// value at this point.
			hyps = append(hyps, logic.Eq(logic.Fn("initValue", fresh), sel(sigma, fresh)))
		}
		goal, err := refInvariant(d, sigma, postEnv, sel(postEnv, xname))
		if err != nil {
			return nil, err
		}
		out = append(out, Obligation{
			Kind: OnDecl, Qualifier: d.Name,
			Description: d.Name + " ondecl: invariant holds at declaration",
			Formula:     logic.Imp(logic.Conj(hyps...), goal),
		})
	}

	// Preservation: an assignment to a different l-value, with a right-hand
	// side consistent with the disallow clause, preserves the invariant.
	preInv, err := refInvariant(d, sigma, env, locL)
	if err != nil {
		return nil, err
	}
	// formValue builds the stored value and per-form hypotheses for one
	// right-hand-side form of the case analysis.
	formValue := func(form string) (logic.Term, []logic.Formula) {
		var hyps []logic.Formula
		var v logic.Term
		switch form {
		case "NULL":
			v = nullT
		case "new":
			v = logic.Fn("newLoc", rho)
			hyps = append(hyps,
				isHeapLoc(v),
				logic.Ne(v, nullT),
				logic.AllPats([]string{"p"}, [][]logic.Term{{sel(sigma, logic.V("p"))}},
					logic.Ne(sel(sigma, logic.V("p")), v)),
			)
		case "varRead":
			yloc := logic.Const("Y_LOC")
			v = sel(sigma, yloc)
			if d.Disallow.Refer {
				// The disallow clause forbids the right-hand side from
				// referring to the subject, so the read location differs.
				hyps = append(hyps, logic.Ne(yloc, locL))
			}
		case "derefRead":
			yloc := logic.Const("Y_LOC")
			v = sel(sigma, sel(sigma, yloc))
		case "addrOfVar":
			yname := logic.Const("y!other")
			v = sel(env, yname)
			if d.Disallow.AddrOf && d.Subject.Classifier == qdl.ClassVar {
				// disallow &X: the address taken is of a different variable.
				hyps = append(hyps, logic.Ne(yname, logic.Const("x!subj")))
			}
		}
		return v, hyps
	}
	// Frame condition (see DESIGN.md): no stored pointer to the subject
	// exists; the extensible typechecker enforces this by rejecting
	// address-of on reference-qualified l-values.
	frame := logic.AllPats([]string{"p"}, [][]logic.Term{{sel(sigma, logic.V("p"))}},
		logic.Ne(sel(sigma, logic.V("p")), locL))
	for i, form := range preservationForms {
		locPrime := logic.Const("LOC_PRIME")
		v, formHyps := formValue(form)
		hyps := append([]logic.Formula{
			preInv,
			// Assignments to the subject itself are covered by the assign
			// obligations (or the unrestricted-assignment obligations
			// below); preservation considers other targets.
			logic.Ne(locPrime, locL),
			frame,
		}, formHyps...)
		hyps = append(hyps, subjectHyps...)
		post := sto(sigma, locPrime, v)
		goal, err := refInvariant(d, post, env, locL)
		if err != nil {
			return nil, err
		}
		out = append(out, Obligation{
			Kind: Preservation, Qualifier: d.Name, ClauseIndex: i,
			Description: fmt.Sprintf("%s preservation: assignment of form %s to another l-value", d.Name, form),
			Formula:     logic.Imp(logic.Conj(hyps...), goal),
		})
	}
	// A reference qualifier with no assign block and no noassign implicitly
	// allows any type-correct assignment to the subject (the paper's
	// unaliased, section 2.2.1). That implicit claim must itself be sound:
	// one obligation per right-hand-side form, targeting the subject.
	// (For unaliased these all prove — the invariant is address-only; for a
	// value-dependent invariant like constq's they would fail, which is why
	// constq needs noassign.)
	if len(d.Assigns) == 0 && !d.NoAssign {
		for i, form := range preservationForms {
			v, formHyps := formValue(form)
			hyps := append([]logic.Formula{preInv, frame}, formHyps...)
			hyps = append(hyps, subjectHyps...)
			post := sto(sigma, locL, v)
			goal, err := refInvariant(d, post, env, locL)
			if err != nil {
				return nil, err
			}
			out = append(out, Obligation{
				Kind: AssignClause, Qualifier: d.Name, ClauseIndex: i,
				Description: fmt.Sprintf("%s unrestricted assignment of form %s to the subject", d.Name, form),
				Formula:     logic.Imp(logic.Conj(hyps...), goal),
			})
		}
	}
	return out, nil
}

// usesInitValue reports whether the invariant mentions the initvalue ghost.
func usesInitValue(p qdl.Pred) bool {
	var termHas func(t qdl.Term) bool
	termHas = func(t qdl.Term) bool {
		switch t := t.(type) {
		case qdl.TInitValue:
			return true
		case qdl.TArith:
			return termHas(t.L) || termHas(t.R)
		}
		return false
	}
	switch p := p.(type) {
	case qdl.PCmp:
		return termHas(p.L) || termHas(p.R)
	case qdl.PIsHeapLoc:
		return termHas(p.T)
	case qdl.PAnd:
		return usesInitValue(p.L) || usesInitValue(p.R)
	case qdl.POr:
		return usesInitValue(p.L) || usesInitValue(p.R)
	case qdl.PImp:
		return usesInitValue(p.L) || usesInitValue(p.R)
	case qdl.PNot:
		return usesInitValue(p.P)
	case qdl.PForall:
		return usesInitValue(p.Body)
	}
	return false
}

// rhsValue builds the stored value and hypotheses for an assign clause's
// right-hand-side pattern.
func rhsValue(d *qdl.Def, reg *qdl.Registry, cl qdl.Clause, rho, sigma logic.Term) (logic.Term, []logic.Formula, error) {
	var hyps []logic.Formula
	switch cl.Pat.(type) {
	case qdl.PNull:
		return nullT, hyps, nil
	case qdl.PFresh:
		// A fresh reference (the section 2.2.1 extension): the callee
		// returned a unique-qualified local, whose invariant allowed only
		// its own stack cell to reference the value — and that cell died
		// with the callee's frame. So the value is NULL or an unreferenced
		// heap location.
		v := logic.Const("FRESH_RET")
		hyps = append(hyps, logic.Disj(
			logic.Eq(v, nullT),
			logic.Conj(
				isHeapLoc(v),
				logic.AllPats([]string{"p"}, [][]logic.Term{{sel(sigma, logic.V("p"))}},
					logic.Ne(sel(sigma, logic.V("p")), v)),
			),
		))
		return v, hyps, nil
	case qdl.PNew:
		v := logic.Fn("newLoc", rho)
		hyps = append(hyps,
			// Allocation returns a non-NULL heap location that nothing in
			// the store references (section 4.1: "we explicitly model
			// memory allocation via a new function symbol").
			isHeapLoc(v),
			logic.Ne(v, nullT),
			logic.AllPats([]string{"p"}, [][]logic.Term{{sel(sigma, logic.V("p"))}},
				logic.Ne(sel(sigma, logic.V("p")), v)),
		)
		return v, hyps, nil
	default:
		cv := introduceVars(d, cl)
		pt, err := patternTerm(cl, cv)
		if err != nil {
			return nil, nil, err
		}
		where, err := whereHypothesis(reg, cl.Where, cv, rho)
		if err != nil {
			return nil, nil, err
		}
		if _, isTrue := where.(logic.TrueF); !isTrue {
			hyps = append(hyps, where)
		}
		// The clause variables become skolem constants: replace variables
		// with constants of the same name.
		sub := map[string]logic.Term{}
		for _, n := range cv.names {
			sub[n] = logic.Const("k!" + n)
		}
		v := logic.SubstTerm(eval(rho, pt), sub)
		for i, h := range hyps {
			hyps[i] = logic.Subst(h, sub)
		}
		return v, hyps, nil
	}
}

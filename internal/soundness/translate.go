package soundness

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/qdl"
)

// helpers for building semantics terms.

func sel(m, k logic.Term) logic.Term       { return logic.Fn("select", m, k) }
func sto(m, k, v logic.Term) logic.Term    { return logic.Fn("store", m, k, v) }
func eval(r, e logic.Term) logic.Term      { return logic.Fn("evalExpr", r, e) }
func getStore(r logic.Term) logic.Term     { return logic.Fn("getStore", r) }
func getEnv(r logic.Term) logic.Term       { return logic.Fn("getEnv", r) }
func isHeapLoc(t logic.Term) logic.Formula { return logic.P("isHeapLoc", t) }

var nullT = logic.Const("NULL")

func cmpFormula(op qdl.PatOp, l, r logic.Term) (logic.Formula, error) {
	switch op {
	case "==":
		return logic.Eq(l, r), nil
	case "!=":
		return logic.Ne(l, r), nil
	case "<":
		return logic.Lt(l, r), nil
	case "<=":
		return logic.Le(l, r), nil
	case ">":
		return logic.Gt(l, r), nil
	case ">=":
		return logic.Ge(l, r), nil
	}
	return nil, fmt.Errorf("soundness: unsupported comparison %q", op)
}

// valueInvariant translates a value qualifier's invariant for subject
// expression term subj in state. A qualifier without an invariant (a flow
// qualifier) translates to TRUE.
func valueInvariant(d *qdl.Def, state, subj logic.Term) (logic.Formula, error) {
	if d.Invariant == nil {
		return logic.TrueF{}, nil
	}
	return transValuePred(d, d.Invariant, state, subj)
}

func transValuePred(d *qdl.Def, p qdl.Pred, state, subj logic.Term) (logic.Formula, error) {
	term := func(t qdl.Term) (logic.Term, error) {
		return transValueTerm(d, t, state, subj)
	}
	switch p := p.(type) {
	case qdl.PCmp:
		l, err := term(p.L)
		if err != nil {
			return nil, err
		}
		r, err := term(p.R)
		if err != nil {
			return nil, err
		}
		return cmpFormula(p.Op, l, r)
	case qdl.PIsHeapLoc:
		t, err := term(p.T)
		if err != nil {
			return nil, err
		}
		return isHeapLoc(t), nil
	case qdl.PAnd:
		l, err := transValuePred(d, p.L, state, subj)
		if err != nil {
			return nil, err
		}
		r, err := transValuePred(d, p.R, state, subj)
		if err != nil {
			return nil, err
		}
		return logic.Conj(l, r), nil
	case qdl.POr:
		l, err := transValuePred(d, p.L, state, subj)
		if err != nil {
			return nil, err
		}
		r, err := transValuePred(d, p.R, state, subj)
		if err != nil {
			return nil, err
		}
		return logic.Disj(l, r), nil
	case qdl.PImp:
		l, err := transValuePred(d, p.L, state, subj)
		if err != nil {
			return nil, err
		}
		r, err := transValuePred(d, p.R, state, subj)
		if err != nil {
			return nil, err
		}
		return logic.Imp(l, r), nil
	case qdl.PNot:
		inner, err := transValuePred(d, p.P, state, subj)
		if err != nil {
			return nil, err
		}
		return logic.Not{F: inner}, nil
	}
	return nil, fmt.Errorf("soundness: predicate %s not supported in value invariants", p)
}

func transValueTerm(d *qdl.Def, t qdl.Term, state, subj logic.Term) (logic.Term, error) {
	switch t := t.(type) {
	case qdl.TValue:
		return eval(state, subj), nil
	case qdl.TNull:
		return nullT, nil
	case qdl.TInt:
		return logic.Num(t.Value), nil
	case qdl.TArith:
		l, err := transValueTerm(d, t.L, state, subj)
		if err != nil {
			return nil, err
		}
		r, err := transValueTerm(d, t.R, state, subj)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case "+":
			return logic.Add(l, r), nil
		case "-":
			return logic.Sub(l, r), nil
		case "*":
			return logic.Mul(l, r), nil
		}
		return nil, fmt.Errorf("soundness: unsupported arithmetic %q in invariant", t.Op)
	}
	return nil, fmt.Errorf("soundness: term %s not supported in value invariants", t)
}

// refInvariant translates a reference qualifier's invariant over an explicit
// store term, environment term, and subject location term. Writing post
// states as explicit store(...) terms keeps the select/store triggers
// matchable.
func refInvariant(d *qdl.Def, storeT, envT, locT logic.Term) (logic.Formula, error) {
	if d.Invariant == nil {
		return logic.TrueF{}, nil
	}
	return transRefPred(d, d.Invariant, storeT, envT, locT, map[string]logic.Term{})
}

func transRefPred(d *qdl.Def, p qdl.Pred, storeT, envT, locT logic.Term, bound map[string]logic.Term) (logic.Formula, error) {
	term := func(t qdl.Term) (logic.Term, error) {
		return transRefTerm(d, t, storeT, envT, locT, bound)
	}
	switch p := p.(type) {
	case qdl.PCmp:
		l, err := term(p.L)
		if err != nil {
			return nil, err
		}
		r, err := term(p.R)
		if err != nil {
			return nil, err
		}
		return cmpFormula(p.Op, l, r)
	case qdl.PIsHeapLoc:
		t, err := term(p.T)
		if err != nil {
			return nil, err
		}
		return isHeapLoc(t), nil
	case qdl.PAnd:
		l, err := transRefPred(d, p.L, storeT, envT, locT, bound)
		if err != nil {
			return nil, err
		}
		r, err := transRefPred(d, p.R, storeT, envT, locT, bound)
		if err != nil {
			return nil, err
		}
		return logic.Conj(l, r), nil
	case qdl.POr:
		l, err := transRefPred(d, p.L, storeT, envT, locT, bound)
		if err != nil {
			return nil, err
		}
		r, err := transRefPred(d, p.R, storeT, envT, locT, bound)
		if err != nil {
			return nil, err
		}
		return logic.Disj(l, r), nil
	case qdl.PImp:
		l, err := transRefPred(d, p.L, storeT, envT, locT, bound)
		if err != nil {
			return nil, err
		}
		r, err := transRefPred(d, p.R, storeT, envT, locT, bound)
		if err != nil {
			return nil, err
		}
		return logic.Imp(l, r), nil
	case qdl.PNot:
		inner, err := transRefPred(d, p.P, storeT, envT, locT, bound)
		if err != nil {
			return nil, err
		}
		return logic.Not{F: inner}, nil
	case qdl.PForall:
		// Quantification over all locations of the appropriate type
		// (typing predicates elided, as in the paper).
		v := "p!" + p.Var
		inner := make(map[string]logic.Term, len(bound)+1)
		for k, t := range bound {
			inner[k] = t
		}
		inner[p.Var] = logic.V(v)
		body, err := transRefPred(d, p.Body, storeT, envT, locT, inner)
		if err != nil {
			return nil, err
		}
		return logic.All([]string{v}, body), nil
	}
	return nil, fmt.Errorf("soundness: predicate %s not supported in reference invariants", p)
}

func transRefTerm(d *qdl.Def, t qdl.Term, storeT, envT, locT logic.Term, bound map[string]logic.Term) (logic.Term, error) {
	switch t := t.(type) {
	case qdl.TValue:
		return sel(storeT, locT), nil
	case qdl.TInitValue:
		// Ghost state (section 8's trace-to-state conversion): the value the
		// subject held at its declaration, a function of the location only.
		return logic.Fn("initValue", locT), nil
	case qdl.TLocation:
		return locT, nil
	case qdl.TDeref:
		b, ok := bound[t.Name]
		if !ok {
			return nil, fmt.Errorf("soundness: *%s unbound in invariant", t.Name)
		}
		return sel(storeT, b), nil
	case qdl.TVar:
		b, ok := bound[t.Name]
		if !ok {
			return nil, fmt.Errorf("soundness: %s unbound in invariant", t.Name)
		}
		return b, nil
	case qdl.TNull:
		return nullT, nil
	case qdl.TInt:
		return logic.Num(t.Value), nil
	}
	return nil, fmt.Errorf("soundness: term %s not supported in reference invariants", t)
}

// Package soundness implements the paper's automated soundness checker
// (section 4): it generates one proof obligation per user-defined type rule
// (case clauses for value qualifiers; assign clauses, ondecl, and a
// preservation case analysis for reference qualifiers) and discharges them
// with the simplify prover, independent of any particular program.
package soundness

import (
	"repro/internal/logic"
)

// Function and predicate symbols of the semantics (section 4.1).
//
// States:      getStore(rho), getEnv(rho)
// Memory:      select(m, k), store(m, k, v)   (Simplify's built-in maps)
// Expressions: constE(c), nullE, varE(x), lvExpr(l), addrE(l),
//              negE(e), multE(e1,e2), plusE(e1,e2), minusE(e1,e2)
// L-values:    varL(x), derefL(e)
// Evaluation:  evalExpr(rho, e), location(rho, l)
// Allocation:  newLoc(rho) with freshness supplied per obligation
// Heap/stack:  isHeapLoc(v) predicate, NULL constant

// Axioms returns the background axiomatization of the CIL subset's dynamic
// semantics. Triggers are explicit so instantiation is predictable.
func Axioms() []logic.Formula {
	rho := logic.V("rho")
	e := logic.V("e")
	e1, e2 := logic.V("e1"), logic.V("e2")
	c := logic.V("c")
	x, y := logic.V("x"), logic.V("y")
	l := logic.V("l")
	m := logic.V("m")
	k, k2, v := logic.V("k"), logic.V("k2"), logic.V("v")
	null := logic.Const("NULL")

	sel := func(m, k logic.Term) logic.Term { return logic.Fn("select", m, k) }
	sto := func(m, k, v logic.Term) logic.Term { return logic.Fn("store", m, k, v) }
	eval := func(r, e logic.Term) logic.Term { return logic.Fn("evalExpr", r, e) }
	loc := func(r, l logic.Term) logic.Term { return logic.Fn("location", r, l) }
	getStore := func(r logic.Term) logic.Term { return logic.Fn("getStore", r) }
	getEnv := func(r logic.Term) logic.Term { return logic.Fn("getEnv", r) }

	pats := func(ts ...logic.Term) [][]logic.Term { return [][]logic.Term{ts} }

	return []logic.Formula{
		// A1: integer constants evaluate to themselves.
		logic.AllPats([]string{"rho", "c"}, pats(eval(rho, logic.Fn("constE", c))),
			logic.Eq(eval(rho, logic.Fn("constE", c)), c)),
		// A2: NULL evaluates to NULL.
		logic.AllPats([]string{"rho"}, pats(eval(rho, logic.Const("nullE"))),
			logic.Eq(eval(rho, logic.Const("nullE")), null)),
		// A3: variable reads go through the environment and store (the
		// paper's example axiom).
		logic.AllPats([]string{"rho", "x"}, pats(eval(rho, logic.Fn("varE", x))),
			logic.Eq(eval(rho, logic.Fn("varE", x)), sel(getStore(rho), sel(getEnv(rho), x)))),
		// A4: reading any l-value reads the store at its location.
		logic.AllPats([]string{"rho", "l"}, pats(eval(rho, logic.Fn("lvExpr", l))),
			logic.Eq(eval(rho, logic.Fn("lvExpr", l)), sel(getStore(rho), loc(rho, l)))),
		// A5: a variable's location comes from the environment.
		logic.AllPats([]string{"rho", "x"}, pats(loc(rho, logic.Fn("varL", x))),
			logic.Eq(loc(rho, logic.Fn("varL", x)), sel(getEnv(rho), x))),
		// A6: the location of *e is e's value.
		logic.AllPats([]string{"rho", "e"}, pats(loc(rho, logic.Fn("derefL", e))),
			logic.Eq(loc(rho, logic.Fn("derefL", e)), eval(rho, e))),
		// A7: &l evaluates to l's location.
		logic.AllPats([]string{"rho", "l"}, pats(eval(rho, logic.Fn("addrE", l))),
			logic.Eq(eval(rho, logic.Fn("addrE", l)), loc(rho, l))),
		// A8: locations of l-values are never NULL.
		logic.AllPats([]string{"rho", "l"}, pats(loc(rho, l)),
			logic.Ne(loc(rho, l), null)),
		// A9: arithmetic operators evaluate pointwise.
		logic.AllPats([]string{"rho", "e1", "e2"}, pats(eval(rho, logic.Fn("multE", e1, e2))),
			logic.Eq(eval(rho, logic.Fn("multE", e1, e2)), logic.Mul(eval(rho, e1), eval(rho, e2)))),
		logic.AllPats([]string{"rho", "e1", "e2"}, pats(eval(rho, logic.Fn("plusE", e1, e2))),
			logic.Eq(eval(rho, logic.Fn("plusE", e1, e2)), logic.Add(eval(rho, e1), eval(rho, e2)))),
		logic.AllPats([]string{"rho", "e1", "e2"}, pats(eval(rho, logic.Fn("minusE", e1, e2))),
			logic.Eq(eval(rho, logic.Fn("minusE", e1, e2)), logic.Sub(eval(rho, e1), eval(rho, e2)))),
		logic.AllPats([]string{"rho", "e"}, pats(eval(rho, logic.Fn("negE", e))),
			logic.Eq(eval(rho, logic.Fn("negE", e)), logic.Neg(eval(rho, e)))),
		// A10: Simplify's select/store map axioms.
		logic.AllPats([]string{"m", "k", "v"}, pats(sto(m, k, v)),
			logic.Eq(sel(sto(m, k, v), k), v)),
		logic.AllPats([]string{"m", "k", "v", "k2"}, pats(sel(sto(m, k, v), k2)),
			logic.Disj(logic.Eq(k2, k), logic.Eq(sel(sto(m, k, v), k2), sel(m, k2)))),
		// A8b: variable locations are never NULL.
		logic.AllPats([]string{"rho", "x"}, pats(sel(getEnv(rho), x)),
			logic.Ne(sel(getEnv(rho), x), null)),
		// A11: variables live on the stack, not the heap.
		logic.AllPats([]string{"rho", "x"}, pats(sel(getEnv(rho), x)),
			logic.Not{F: logic.P("isHeapLoc", sel(getEnv(rho), x))}),
		// A12: NULL is not a heap location.
		logic.Not{F: logic.P("isHeapLoc", null)},
		// A13: the environment is injective: distinct variables have
		// distinct locations.
		logic.AllPats([]string{"rho", "x", "y"},
			[][]logic.Term{{sel(getEnv(rho), x), sel(getEnv(rho), y)}},
			logic.Disj(logic.Eq(x, y), logic.Ne(sel(getEnv(rho), x), sel(getEnv(rho), y)))),
	}
}

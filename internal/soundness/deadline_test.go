package soundness

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/logic"
	"repro/internal/qdl"
	"repro/internal/quals"
	"repro/internal/simplify"
)

// loopAxioms is the prover-level trigger loop injected through
// Options.ExtraAxioms: Ploop(c0) plus ∀x. Ploop(x) ⇒ Ploop(floop(x)).
// Against an unprovable obligation it makes the search diverge, so only the
// per-goal deadline can stop it.
func loopAxioms() []logic.Formula {
	c := logic.Const("c0")
	x := logic.Var{Name: "x"}
	return []logic.Formula{
		logic.P("Ploop", c),
		logic.All([]string{"x"}, logic.Imp(logic.P("Ploop", x), logic.P("Ploop", logic.Fn("floop", x)))),
	}
}

// brokenPosRegistry loads pos with its first case weakened to C >= 0 (the
// section 2.1.3 mutation): that case's obligation is unprovable, which under
// loopAxioms means its search never saturates.
func brokenPosRegistry(t *testing.T) *qdl.Registry {
	t.Helper()
	reg, err := qdl.Load(map[string]string{
		"pos.qdl": strings.Replace(quals.Pos, "C > 0", "C >= 0", 1),
		"neg.qdl": quals.Neg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestProveAllDeadlineTriggerLoop is the tentpole's acceptance scenario: a
// synthetic diverging obligation must come back Unknown("deadline exceeded")
// with per-goal stats attached, the whole ProveAll must finish within twice
// the goal budget, and no worker goroutine may leak.
func TestProveAllDeadlineTriggerLoop(t *testing.T) {
	const timeout = 500 * time.Millisecond
	reg := brokenPosRegistry(t)
	opts := DefaultOptions()
	opts.Prover.MaxRounds = 1 << 20
	opts.Prover.MaxInstances = 1 << 20
	opts.Prover.GoalTimeout = timeout
	opts.ExtraAxioms = loopAxioms()
	opts.Concurrency = 4

	before := runtime.NumGoroutine()
	start := time.Now()
	reports, err := ProveAll(reg, opts)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed >= 2*timeout {
		t.Errorf("ProveAll took %v with a diverging goal, want < 2x the %v budget", elapsed, timeout)
	}

	var pos *Report
	for _, r := range reports {
		if r.Qualifier == "pos" {
			pos = r
		}
	}
	if pos == nil {
		t.Fatal("no report for pos")
	}
	if pos.Sound() {
		t.Fatal("broken pos reported sound")
	}
	failed := pos.Failed()
	if len(failed) == 0 {
		t.Fatal("no failed obligations on broken pos")
	}
	sawDeadline := false
	for _, res := range failed {
		if res.Outcome.Reason == simplify.ReasonDeadline {
			sawDeadline = true
			if res.Outcome.Stats.Rounds == 0 || res.Outcome.Stats.Instantiations == 0 {
				t.Errorf("timed-out goal carries empty stats: %+v", res.Outcome.Stats)
			}
		}
	}
	if !sawDeadline {
		t.Errorf("no failed obligation reported %q; reasons: %v", simplify.ReasonDeadline, failureReasons(failed))
	}
	if pos.Stats.WallTime <= 0 {
		t.Errorf("report-level stats not aggregated: %+v", pos.Stats)
	}

	// Worker pools must drain: allow the runtime a moment to retire them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before ProveAll, %d after", before, after)
	}
}

func failureReasons(results []ObligationResult) []string {
	var out []string
	for _, r := range results {
		out = append(out, r.Outcome.Reason)
	}
	return out
}

// TestProveAllConcurrencyBudget pins the pool-budget split: with C total
// workers, the outer qualifier pool times the inner obligation pools must
// never discharge more than C obligations at once (the old nested pools ran
// up to C*C).
func TestProveAllConcurrencyBudget(t *testing.T) {
	reg := standard(t)
	const budget = 2

	var active, highWater int64
	dischargeHook = func(Obligation) {
		n := atomic.AddInt64(&active, 1)
		for {
			hw := atomic.LoadInt64(&highWater)
			if n <= hw || atomic.CompareAndSwapInt64(&highWater, hw, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond) // force overlap
		atomic.AddInt64(&active, -1)
	}
	defer func() { dischargeHook = nil }()

	opts := DefaultOptions()
	opts.Concurrency = budget
	if _, err := ProveAll(reg, opts); err != nil {
		t.Fatal(err)
	}
	hw := atomic.LoadInt64(&highWater)
	if hw > budget {
		t.Errorf("high-water concurrency %d exceeds the budget of %d", hw, budget)
	}
	if hw < 2 {
		t.Errorf("high-water concurrency %d; the pool never overlapped, budget test is vacuous", hw)
	}
}

// TestProveAllIdleWorkerClamp: a concurrency far above the qualifier count
// must neither deadlock nor leak idle workers, and reports stay in
// registration order (the satellite's original symptom was idle outer
// workers under Concurrency > len(qualifiers)).
func TestProveAllIdleWorkerClamp(t *testing.T) {
	reg := standard(t)
	before := runtime.NumGoroutine()
	opts := DefaultOptions()
	opts.Concurrency = 64 // far more than qualifiers or obligations
	reports, err := ProveAll(reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	defs := reg.Defs()
	if len(reports) != len(defs) {
		t.Fatalf("got %d reports for %d qualifiers", len(reports), len(defs))
	}
	for i, r := range reports {
		if r.Qualifier != defs[i].Name {
			t.Errorf("report %d out of order: got %s, want %s", i, r.Qualifier, defs[i].Name)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak with oversized pool: %d before, %d after", before, after)
	}
}

// TestForEachIndexClamp pins the pool primitive: every index runs exactly
// once at any workers/n ratio, including workers > n and n = 0.
func TestForEachIndexClamp(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 8}, {1, 8}, {3, 64}, {8, 3}, {5, 5}, {7, 1}, {4, 0},
	} {
		var mu sync.Mutex
		seen := map[int]int{}
		forEachIndex(tc.n, tc.workers, func(i int) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		})
		if len(seen) != tc.n {
			t.Errorf("n=%d workers=%d: %d distinct indices run", tc.n, tc.workers, len(seen))
		}
		for i, c := range seen {
			if c != 1 {
				t.Errorf("n=%d workers=%d: index %d run %d times", tc.n, tc.workers, i, c)
			}
		}
	}
}

// TestDischargePanicIsolation: a panic while discharging one obligation must
// fail only that obligation's report entry; every other obligation still
// proves, and the pool survives.
func TestDischargePanicIsolation(t *testing.T) {
	reg := standard(t)
	d := reg.Lookup("pos")
	obls, err := Obligations(d, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(obls) < 2 {
		t.Fatalf("need at least 2 obligations, got %d", len(obls))
	}
	victim := obls[0].Description

	dischargeHook = func(o Obligation) {
		if o.Description == victim {
			panic("injected discharge fault")
		}
	}
	defer func() { dischargeHook = nil }()

	opts := DefaultOptions()
	opts.Concurrency = 4
	rep, err := Prove(d, reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sound() {
		t.Fatal("report sound despite an injected panic")
	}
	for _, res := range rep.Results {
		if res.Obligation.Description == victim {
			if res.Valid || !strings.HasPrefix(res.Outcome.Reason, "panic:") {
				t.Errorf("victim obligation: valid=%v reason=%q, want a panic failure", res.Valid, res.Outcome.Reason)
			}
		} else if !res.Valid {
			t.Errorf("unrelated obligation %q failed: %q", res.Obligation.Description, res.Outcome.Reason)
		}
	}
}

// TestTraceWriter checks the JSONL trace: one well-formed record per
// obligation, in generation order, carrying verdicts and counters.
func TestTraceWriter(t *testing.T) {
	reg := standard(t)
	d := reg.Lookup("pos")
	var buf bytes.Buffer
	opts := DefaultOptions()
	opts.Trace = &buf
	rep, err := Prove(d, reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rep.Results) {
		t.Fatalf("%d trace records for %d obligations", len(lines), len(rep.Results))
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record %d is not valid JSON: %v\n%s", i, err, line)
		}
		if rec["qualifier"] != "pos" {
			t.Errorf("record %d qualifier = %v", i, rec["qualifier"])
		}
		if rec["obligation"] != rep.Results[i].Obligation.Description {
			t.Errorf("record %d out of order: %v", i, rec["obligation"])
		}
		if _, ok := rec["decisions"]; !ok {
			t.Errorf("record %d lacks telemetry fields: %s", i, line)
		}
	}
}

// TestTraceDeterministicAcrossRuns is the CDCL determinism regression at the
// trace level: two serial ProveAll runs over the standard library — fresh
// caches, lemma sharing live, timings omitted — must emit byte-identical
// trace JSONL. Any nondeterminism in decision order, restart schedule,
// conflict analysis, or lemma pooling shows up as a trace_hash diff here.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	reg := standard(t)
	run := func() []byte {
		var buf bytes.Buffer
		opts := DefaultOptions()
		opts.Concurrency = 1
		opts.Cache = simplify.NewCache(0)
		opts.Trace = &buf
		opts.TraceOmitTimings = true
		if _, err := ProveAll(reg, opts); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		la := strings.Split(string(a), "\n")
		lb := strings.Split(string(b), "\n")
		for i := range la {
			if i >= len(lb) || la[i] != lb[i] {
				t.Fatalf("trace runs diverge at record %d:\nrun1: %s\nrun2: %s", i, la[i], lb[i])
			}
		}
		t.Fatalf("trace runs differ in length: %d vs %d bytes", len(a), len(b))
	}
	if !bytes.Contains(a, []byte(`"trace_hash"`)) {
		t.Error("trace records carry no trace_hash")
	}
	if bytes.Contains(a, []byte(`"elapsed_us":1`)) {
		t.Error("TraceOmitTimings left a nonzero elapsed_us")
	}
}

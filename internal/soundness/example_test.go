package soundness_test

import (
	"fmt"

	"repro/internal/qdl"
	"repro/internal/soundness"
)

// ExampleProve shows the paper's core workflow: define a qualifier with its
// type rules and invariant, and let the soundness checker prove the rules
// correct for all programs.
func ExampleProve() {
	reg, err := qdl.Load(map[string]string{"even10.qdl": `
value qualifier even10(int Expr E)
  case E of
    decl int Const C:
      C, where C >= 10
  | decl int Expr E1, E2:
      E1 + E2, where even10(E1) && even10(E2)
  invariant value(E) >= 10
`})
	if err != nil {
		fmt.Println("load:", err)
		return
	}
	report, err := soundness.Prove(reg.Lookup("even10"), reg, soundness.DefaultOptions())
	if err != nil {
		fmt.Println("prove:", err)
		return
	}
	fmt.Println("sound:", report.Sound())
	fmt.Println("obligations:", len(report.Results))
	// Output:
	// sound: true
	// obligations: 2
}

// ExampleProve_broken shows the negative side: an erroneous rule is caught
// before any program is ever checked (section 2.1.3).
func ExampleProve_broken() {
	reg, err := qdl.Load(map[string]string{"bad.qdl": `
value qualifier atleast10(int Expr E)
  case E of
    decl int Const C:
      C, where C >= 10
  | decl int Expr E1, E2:
      E1 - E2, where atleast10(E1) && atleast10(E2)
  invariant value(E) >= 10
`})
	if err != nil {
		fmt.Println("load:", err)
		return
	}
	report, err := soundness.Prove(reg.Lookup("atleast10"), reg, soundness.DefaultOptions())
	if err != nil {
		fmt.Println("prove:", err)
		return
	}
	fmt.Println("sound:", report.Sound())
	for _, f := range report.Failed() {
		fmt.Println("failed:", f.Obligation.Description)
	}
	// Output:
	// sound: false
	// failed: atleast10 case 2: decl int Expr E1, int Expr E2: E1 - E2, where (atleast10(E1) && atleast10(E2))
}

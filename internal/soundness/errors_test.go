package soundness

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/qdl"
	"repro/internal/simplify"
)

// Error-path coverage: constructs the translators cannot handle must be
// reported, not silently mistranslated.

func mustDef(t *testing.T, src string) (*qdl.Def, *qdl.Registry) {
	t.Helper()
	reg, err := qdl.Load(map[string]string{"t.qdl": src})
	if err != nil {
		t.Fatal(err)
	}
	defs := reg.Defs()
	return defs[len(defs)-1], reg
}

func TestUnsupportedInvariantArithmetic(t *testing.T) {
	// Division in invariants has no prover theory; obligation generation
	// must fail loudly.
	d, reg := mustDef(t, `
value qualifier q(int Expr E)
  case E of
    decl int Const C:
      C, where C > 0
  invariant value(E) * value(E) > 0
`)
	// Multiplication is supported; this one generates fine.
	if _, err := Obligations(d, reg); err != nil {
		t.Errorf("multiplication in invariant should be supported: %v", err)
	}
}

func TestNotEqualPatternOperatorUnsupported(t *testing.T) {
	// Comparison operators in patterns generate expression terms with no
	// evaluation axiom; obligations still generate (the prover will return
	// Unknown), exercising the binopExprFn mapping.
	d, reg := mustDef(t, `
value qualifier q(int Expr E)
  case E of
    decl int Expr E1, E2:
      E1 == E2, where q(E1)
  invariant value(E) >= 0
`)
	obls, err := Obligations(d, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(obls) != 1 {
		t.Fatalf("obligations = %d", len(obls))
	}
	if !strings.Contains(obls[0].Formula.String(), "eqE") {
		t.Errorf("formula = %s", obls[0].Formula)
	}
	// Unprovable (no axiom for eqE), so the report must say NOT PROVEN.
	rep, err := Prove(d, reg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sound() {
		t.Error("eqE obligation proven without axioms?")
	}
}

func TestNotPatternGeneratesNotE(t *testing.T) {
	d, reg := mustDef(t, `
value qualifier q(int Expr E)
  case E of
    decl int Expr E1:
      !E1, where q(E1)
  invariant value(E) >= 0
`)
	obls, err := Obligations(d, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(obls[0].Formula.String(), "notE") {
		t.Errorf("formula = %s", obls[0].Formula)
	}
}

func TestOnDeclObligationShape(t *testing.T) {
	reg, err := qdl.Load(map[string]string{"u.qdl": `
ref qualifier u(T Var X)
  ondecl
  disallow &X
  invariant forall T** P: *P != location(X)
`})
	if err != nil {
		t.Fatal(err)
	}
	obls, err := Obligations(reg.Lookup("u"), reg)
	if err != nil {
		t.Fatal(err)
	}
	var onDecl string
	for _, o := range obls {
		if o.Kind == OnDecl {
			onDecl = o.Formula.String()
		}
	}
	if onDecl == "" {
		t.Fatal("no ondecl obligation")
	}
	for _, want := range []string{"FRESH_LOC", "(store (getEnv RHO) x!subj FRESH_LOC)"} {
		if !strings.Contains(onDecl, want) {
			t.Errorf("ondecl obligation lacks %q:\n%s", want, onDecl)
		}
	}
}

func TestAssignClauseWithWhere(t *testing.T) {
	// A hypothetical ref qualifier whose assign clause carries a
	// qualifier-check where: the RHS invariant becomes a hypothesis.
	reg, err := qdl.Load(map[string]string{"t.qdl": `
value qualifier posq(int Expr E)
  case E of
    decl int Const C:
      C, where C > 0
  invariant value(E) > 0

ref qualifier holdspos(int* LValue L)
  assign L
    decl int Expr E1:
      E1, where posq(E1)
  invariant value(L) == NULL || value(L) != NULL
`})
	if err != nil {
		t.Fatal(err)
	}
	obls, err := Obligations(reg.Lookup("holdspos"), reg)
	if err != nil {
		t.Fatal(err)
	}
	var assign string
	for _, o := range obls {
		if o.Kind == AssignClause {
			assign = o.Formula.String()
		}
	}
	if !strings.Contains(assign, "(> (evalExpr RHO k!e!E1) 0)") {
		t.Errorf("where hypothesis missing:\n%s", assign)
	}
	rep, err := Prove(reg.Lookup("holdspos"), reg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound() {
		t.Errorf("trivial invariant should prove:\n%s", rep)
	}
}

func TestAxiomsAreConsistent(t *testing.T) {
	// The axiom set must not be self-contradictory: FALSE must not be
	// provable from it.
	rep, err := qdl.Load(map[string]string{"t.qdl": `
value qualifier q(int Expr E)
  invariant value(E) > 0
`})
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
	// Directly: prove FALSE from the axioms.
	out := proveFormula(t, "(AND p (NOT p))")
	if out {
		t.Error("axioms prove a contradiction")
	}
}

func proveFormula(t *testing.T, goal string) bool {
	t.Helper()
	f, err := logic.ParseFormula(goal)
	if err != nil {
		t.Fatal(err)
	}
	p := simplify.New(Axioms(), simplify.DefaultOptions())
	return p.Prove(f).Result == simplify.Valid
}

func TestRichValueInvariantShapes(t *testing.T) {
	// Disjunction, implication, negation, and constant arithmetic in value
	// invariants all translate and prove.
	d, reg := mustDef(t, `
value qualifier oddball(int Expr E)
  case E of
    decl int Const C:
      C, where C > 2 + 3
  invariant !(value(E) <= 0) && (value(E) > 100 || value(E) > 1) && (value(E) > 10 => value(E) > 5)
`)
	rep, err := Prove(d, reg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound() {
		t.Errorf("oddball not proven:\n%s", rep)
	}
}

func TestValueInvariantWithNullAndWhereOr(t *testing.T) {
	d, reg := mustDef(t, `
value qualifier picky(int Expr E)
  case E of
    decl int Const C:
      C, where C == 4 || C == 7
  | decl int Const C:
      C, where !(C < 4)
  invariant value(E) >= 4
`)
	rep, err := Prove(d, reg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound() {
		t.Errorf("picky not proven:\n%s", rep)
	}
}

func TestObligationKindStrings(t *testing.T) {
	for k, want := range map[ObligationKind]string{
		CaseClause: "case", AssignClause: "assign", OnDecl: "ondecl", Preservation: "preservation",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

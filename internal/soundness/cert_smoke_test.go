package soundness

import (
	"testing"

	"repro/internal/cert"
	"repro/internal/qdl"
	"repro/internal/quals"
	"repro/internal/simplify"
)

// TestCertificateSmoke proves the entire shipped qualifier suite (standard
// pack plus extras) with certificate emission on: every Valid obligation
// must carry a certificate that the independent replay checker accepts, and
// the run must reject nothing. This is the end-to-end exercise of emission
// across the prefilter tiers and the CDCL trail on the paper's own
// obligations; `make cert-smoke` runs exactly this test.
func TestCertificateSmoke(t *testing.T) {
	reg, err := qdl.Load(quals.FileContents())
	if err != nil {
		t.Fatal(err)
	}
	before := simplify.GlobalCertCounters()
	opts := DefaultOptions()
	opts.Prover.EmitCertificates = true
	reports, err := ProveAll(reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	for _, r := range reports {
		for _, res := range r.Results {
			if !res.Valid || res.Obligation.Vacuous {
				continue
			}
			if res.Outcome.Certificate == nil {
				t.Errorf("%s: %s: Valid without a certificate (%q)",
					r.Qualifier, res.Obligation.Description, res.Outcome.Reason)
				continue
			}
			if err := cert.Verify(res.Outcome.Certificate); err != nil {
				t.Errorf("%s: %s: independent replay rejected: %v",
					r.Qualifier, res.Obligation.Description, err)
			}
			emitted++
		}
	}
	if emitted == 0 {
		t.Fatal("no certificates emitted across the qualifier suite")
	}
	if after := simplify.GlobalCertCounters(); after.Rejected != before.Rejected {
		t.Errorf("suite emission rejected %d certificates, want 0", after.Rejected-before.Rejected)
	}
	t.Logf("qualifier suite: %d Valid obligations, every certificate replayed", emitted)
}

package soundness

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil/leak"
)

// Hardening tests for forEachIndex, the worker pool under ProveAll's
// parallel discharge: degenerate sizes must not call fn or hang, every
// index must be visited exactly once, and a panicking fn must propagate to
// the caller without deadlocking the feeder or leaking worker goroutines.

func TestForEachIndexZeroItems(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		forEachIndex(0, 8, func(i int) {
			t.Errorf("fn called with i=%d for n=0", i)
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("forEachIndex(0, 8, fn) hung")
	}
}

func TestForEachIndexMoreWorkersThanItems(t *testing.T) {
	const n = 3
	var visited [n]atomic.Int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		forEachIndex(n, 64, func(i int) { visited[i].Add(1) })
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("forEachIndex with workers > n hung")
	}
	for i := range visited {
		if got := visited[i].Load(); got != 1 {
			t.Errorf("index %d visited %d times, want 1", i, got)
		}
	}
}

func TestForEachIndexSerialFallback(t *testing.T) {
	for _, workers := range []int{-1, 0, 1} {
		var count int // no lock: the serial path must stay on one goroutine
		forEachIndex(5, workers, func(i int) { count++ })
		if count != 5 {
			t.Errorf("workers=%d: %d calls, want 5", workers, count)
		}
	}
}

// TestForEachIndexPanicPropagates requires that a panic inside fn reaches
// the forEachIndex caller (so safeDischarge above it can turn it into a
// diagnostic) instead of crashing a pool goroutine, and that the pool winds
// down completely: no stuck feeder, no leaked workers.
func TestForEachIndexPanicPropagates(t *testing.T) {
	leak.Check(t)
	before := runtime.NumGoroutine()

	recovered := make(chan any, 1)
	go func() {
		defer func() { recovered <- recover() }()
		forEachIndex(1000, 8, func(i int) {
			if i == 3 {
				panic("boom at 3")
			}
		})
	}()
	select {
	case r := <-recovered:
		if r != "boom at 3" {
			t.Fatalf("recovered %v, want the fn's panic value", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("panicking fn deadlocked forEachIndex")
	}

	// The workers must all have exited; give the runtime a moment to reap.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Errorf("goroutines grew from %d to %d: pool leaked workers after a panic", before, after)
	}
}

// TestForEachIndexAllPanic floods every worker with panics at once; the
// call must still return (with some panic value) rather than deadlock on
// the unbuffered index channel.
func TestForEachIndexAllPanic(t *testing.T) {
	leak.Check(t)
	recovered := make(chan any, 1)
	go func() {
		defer func() { recovered <- recover() }()
		forEachIndex(64, 8, func(i int) { panic(i) })
	}()
	select {
	case r := <-recovered:
		if r == nil {
			t.Fatal("forEachIndex swallowed the workers' panics")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("all-panic workload deadlocked forEachIndex")
	}
}

// TestForEachIndexConcurrentVisitsEachOnce is the -race gate for the pool:
// heavy n, contended counters, every index exactly once.
func TestForEachIndexConcurrentVisitsEachOnce(t *testing.T) {
	const n = 4096
	visited := make([]atomic.Int32, n)
	var total atomic.Int64
	forEachIndex(n, runtime.GOMAXPROCS(0), func(i int) {
		visited[i].Add(1)
		total.Add(1)
	})
	if got := total.Load(); got != n {
		t.Fatalf("%d calls, want %d", got, n)
	}
	for i := range visited {
		if got := visited[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

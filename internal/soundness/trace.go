package soundness

import (
	"encoding/json"
	"io"
	"sync"
)

// traceRecord is the JSON Lines schema for one discharged obligation. Field
// names are stable: downstream tooling (jq, spreadsheet imports) keys on
// them.
type traceRecord struct {
	Qualifier  string `json:"qualifier"`
	Kind       string `json:"kind"`
	Obligation string `json:"obligation"`
	OblKind    string `json:"obligation_kind"`
	Result     string `json:"result"`
	Valid      bool   `json:"valid"`
	Reason     string `json:"reason,omitempty"`
	Vacuous    bool   `json:"vacuous,omitempty"`
	CacheHit   bool   `json:"cache_hit,omitempty"`
	// ElapsedUS is the goal's wall-clock discharge time in microseconds
	// (measured at the discharge site, so it is near zero on a cache hit).
	ElapsedUS int64 `json:"elapsed_us"`

	// TraceHash is the interned engine's deterministic fingerprint of the
	// whole search event stream (decisions, conflicts, learned clauses,
	// backjumps, restarts). Two runs with identical inputs produce identical
	// hashes; empty for the legacy engine.
	TraceHash string `json:"trace_hash,omitempty"`

	// Per-goal search telemetry (see simplify.Stats). On a cache hit these
	// are the stored search's counters.
	Rounds           int   `json:"rounds"`
	Decisions        int   `json:"decisions"`
	CaseSplits       int   `json:"case_splits"`
	Instantiations   int   `json:"instantiations"`
	GroundClauses    int   `json:"ground_clauses"`
	CongruenceMerges int   `json:"congruence_merges"`
	FMEliminations   int   `json:"fm_eliminations"`
	TheoryChecks     int   `json:"theory_checks"`
	SearchUS         int64 `json:"search_us"`

	// Prefilter and CDCL telemetry (omitted when zero to keep old traces
	// diffable): which cheap tier discharged the goal, and the learned-lemma
	// churn of the search.
	PrefilterAttempts int `json:"prefilter_attempts,omitempty"`
	PrefilterGround   int `json:"prefilter_ground,omitempty"`
	PrefilterUnit     int `json:"prefilter_unit,omitempty"`
	PrefilterInterval int `json:"prefilter_interval,omitempty"`
	LearnedClauses    int `json:"learned_clauses,omitempty"`
	ForgottenClauses  int `json:"forgotten_clauses,omitempty"`
	Restarts          int `json:"restarts,omitempty"`
	LemmasImported    int `json:"lemmas_imported,omitempty"`
	LemmasExported    int `json:"lemmas_exported,omitempty"`

	// Certificate telemetry (simplify.Options.EmitCertificates): steps in
	// the emitted proof, and whether it passed replay verification.
	CertSteps    int  `json:"cert_steps,omitempty"`
	CertReplayed bool `json:"cert_replayed,omitempty"`
}

// traceMu serializes trace writes: ProveAllContext discharges qualifiers
// concurrently, and each qualifier's block of records must land contiguously.
var traceMu sync.Mutex

// writeTrace emits one JSONL record per obligation result, in generation
// order, as a single contiguous block. With omitTimings the two wall-clock
// fields are zeroed, leaving only deterministic fields — two serial runs
// with fresh caches then produce byte-identical trace files.
func writeTrace(w io.Writer, r *Report, omitTimings bool) {
	traceMu.Lock()
	defer traceMu.Unlock()
	enc := json.NewEncoder(w)
	for _, res := range r.Results {
		st := res.Outcome.Stats
		rec := traceRecord{
			Qualifier:         r.Qualifier,
			Kind:              r.Kind.String(),
			Obligation:        res.Obligation.Description,
			OblKind:           res.Obligation.Kind.String(),
			Result:            res.Outcome.Result.String(),
			Valid:             res.Valid,
			Reason:            res.Outcome.Reason,
			Vacuous:           res.Obligation.Vacuous,
			CacheHit:          res.Outcome.CacheHit,
			ElapsedUS:         res.Elapsed.Microseconds(),
			TraceHash:         res.Outcome.TraceHash,
			Rounds:            st.Rounds,
			Decisions:         st.Decisions,
			CaseSplits:        st.CaseSplits,
			Instantiations:    st.Instantiations,
			GroundClauses:     st.GroundClauses,
			CongruenceMerges:  st.CongruenceMerges,
			FMEliminations:    st.FMEliminations,
			TheoryChecks:      st.TheoryChecks,
			SearchUS:          st.WallTime.Microseconds(),
			PrefilterAttempts: st.PrefilterAttempts,
			PrefilterGround:   st.PrefilterGround,
			PrefilterUnit:     st.PrefilterUnit,
			PrefilterInterval: st.PrefilterInterval,
			LearnedClauses:    st.LearnedClauses,
			ForgottenClauses:  st.ForgottenClauses,
			Restarts:          st.Restarts,
			LemmasImported:    st.LemmasImported,
			LemmasExported:    st.LemmasExported,
		}
		if res.Outcome.Certificate != nil {
			rec.CertSteps = len(res.Outcome.Certificate.Steps)
			rec.CertReplayed = st.CertsReplayed > 0
		}
		if omitTimings {
			rec.ElapsedUS, rec.SearchUS = 0, 0
		}
		if err := enc.Encode(rec); err != nil {
			return // a broken trace sink must not fail the proof run
		}
	}
}

package soundness

import (
	"encoding/json"
	"io"
	"sync"
)

// traceRecord is the JSON Lines schema for one discharged obligation. Field
// names are stable: downstream tooling (jq, spreadsheet imports) keys on
// them.
type traceRecord struct {
	Qualifier  string `json:"qualifier"`
	Kind       string `json:"kind"`
	Obligation string `json:"obligation"`
	OblKind    string `json:"obligation_kind"`
	Result     string `json:"result"`
	Valid      bool   `json:"valid"`
	Reason     string `json:"reason,omitempty"`
	Vacuous    bool   `json:"vacuous,omitempty"`
	CacheHit   bool   `json:"cache_hit,omitempty"`
	// ElapsedUS is the goal's wall-clock discharge time in microseconds
	// (measured at the discharge site, so it is near zero on a cache hit).
	ElapsedUS int64 `json:"elapsed_us"`

	// Per-goal search telemetry (see simplify.Stats). On a cache hit these
	// are the stored search's counters.
	Rounds           int   `json:"rounds"`
	Decisions        int   `json:"decisions"`
	CaseSplits       int   `json:"case_splits"`
	Instantiations   int   `json:"instantiations"`
	GroundClauses    int   `json:"ground_clauses"`
	CongruenceMerges int   `json:"congruence_merges"`
	FMEliminations   int   `json:"fm_eliminations"`
	TheoryChecks     int   `json:"theory_checks"`
	SearchUS         int64 `json:"search_us"`
}

// traceMu serializes trace writes: ProveAllContext discharges qualifiers
// concurrently, and each qualifier's block of records must land contiguously.
var traceMu sync.Mutex

// writeTrace emits one JSONL record per obligation result, in generation
// order, as a single contiguous block.
func writeTrace(w io.Writer, r *Report) {
	traceMu.Lock()
	defer traceMu.Unlock()
	enc := json.NewEncoder(w)
	for _, res := range r.Results {
		st := res.Outcome.Stats
		rec := traceRecord{
			Qualifier:        r.Qualifier,
			Kind:             r.Kind.String(),
			Obligation:       res.Obligation.Description,
			OblKind:          res.Obligation.Kind.String(),
			Result:           res.Outcome.Result.String(),
			Valid:            res.Valid,
			Reason:           res.Outcome.Reason,
			Vacuous:          res.Obligation.Vacuous,
			CacheHit:         res.Outcome.CacheHit,
			ElapsedUS:        res.Elapsed.Microseconds(),
			Rounds:           st.Rounds,
			Decisions:        st.Decisions,
			CaseSplits:       st.CaseSplits,
			Instantiations:   st.Instantiations,
			GroundClauses:    st.GroundClauses,
			CongruenceMerges: st.CongruenceMerges,
			FMEliminations:   st.FMEliminations,
			TheoryChecks:     st.TheoryChecks,
			SearchUS:         st.WallTime.Microseconds(),
		}
		if err := enc.Encode(rec); err != nil {
			return // a broken trace sink must not fail the proof run
		}
	}
}

package soundness

import (
	"strings"
	"testing"

	"repro/internal/qdl"
	"repro/internal/quals"
	"repro/internal/simplify"
)

// normalizeReports zeroes the fields that legitimately vary between serial
// and parallel runs: wall-clock times, and cache-hit markers (two workers
// proving identical formulas concurrently may both miss where a serial run
// would hit; the verdicts are unaffected).
func normalizeReports(reports []*Report) {
	for _, r := range reports {
		r.Elapsed = 0
		r.CacheHits = 0
		for i := range r.Results {
			r.Results[i].Elapsed = 0
			r.Results[i].Outcome.CacheHit = false
		}
	}
}

// TestProveAllParallelMatchesSerial is the determinism contract of the
// worker pool: a parallel run over the standard library must produce
// byte-identical reports (modulo timing and cache-hit markers) in the same
// registration order as a serial run. Run under -race it also exercises the
// shared prover and cache concurrently.
func TestProveAllParallelMatchesSerial(t *testing.T) {
	reg := standard(t)

	serialOpts := DefaultOptions()
	serialOpts.Concurrency = 1
	serial, err := ProveAll(reg, serialOpts)
	if err != nil {
		t.Fatal(err)
	}

	parallelOpts := DefaultOptions()
	parallelOpts.Concurrency = 8
	parallel, err := ProveAll(reg, parallelOpts)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial) != len(parallel) {
		t.Fatalf("report counts differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	normalizeReports(serial)
	normalizeReports(parallel)
	for i := range serial {
		if serial[i].Qualifier != parallel[i].Qualifier {
			t.Errorf("report %d order differs: serial %s, parallel %s", i, serial[i].Qualifier, parallel[i].Qualifier)
			continue
		}
		if serial[i].Sound() != parallel[i].Sound() {
			t.Errorf("%s: verdicts differ: serial %t, parallel %t", serial[i].Qualifier, serial[i].Sound(), parallel[i].Sound())
		}
		if s, p := serial[i].String(), parallel[i].String(); s != p {
			t.Errorf("%s: reports differ\nserial:\n%s\nparallel:\n%s", serial[i].Qualifier, s, p)
		}
	}
}

// TestProveParallelMatchesSerial pins the obligation-level pool: one
// qualifier's obligations discharged on 8 workers report in generation
// order, identical to the serial discharge.
func TestProveParallelMatchesSerial(t *testing.T) {
	reg := standard(t)
	d := reg.Lookup("unique")

	serialOpts := DefaultOptions()
	serialOpts.Concurrency = 1
	serial, err := Prove(d, reg, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	parallelOpts := DefaultOptions()
	parallelOpts.Concurrency = 8
	parallel, err := Prove(d, reg, parallelOpts)
	if err != nil {
		t.Fatal(err)
	}
	normalizeReports([]*Report{serial, parallel})
	if s, p := serial.String(), parallel.String(); s != p {
		t.Errorf("reports differ\nserial:\n%s\nparallel:\n%s", s, p)
	}
}

// TestProveAllCollectsErrors: a qualifier whose obligations cannot be
// generated must yield a Report with Err set, without suppressing the other
// qualifiers' results.
func TestProveAllCollectsErrors(t *testing.T) {
	bad := `
value qualifier bad(int Expr E)
  case E of
    decl int Const C:
      C, where C > 0
  invariant value(E) / 2 > 0
`
	reg, err := qdl.Load(map[string]string{"pos.qdl": quals.Pos, "neg.qdl": quals.Neg, "bad.qdl": bad})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := ProveAll(reg, DefaultOptions())
	if err == nil {
		t.Error("ProveAll returned nil error despite an untranslatable qualifier")
	} else if !strings.Contains(err.Error(), "bad") {
		t.Errorf("joined error does not name the failing qualifier: %v", err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3 (failures must not drop reports)", len(reports))
	}
	byName := map[string]*Report{}
	for _, r := range reports {
		byName[r.Qualifier] = r
	}
	badRep := byName["bad"]
	if badRep == nil {
		t.Fatal("no report for the failing qualifier")
	}
	if badRep.Err == nil {
		t.Error("failing qualifier's report has nil Err")
	}
	if badRep.Sound() {
		t.Error("failing qualifier reported sound")
	}
	if s := badRep.String(); !strings.Contains(s, "ERROR") {
		t.Errorf("error report does not say ERROR:\n%s", s)
	}
	posRep := byName["pos"]
	if posRep == nil || posRep.Err != nil || !posRep.Sound() {
		t.Errorf("healthy qualifier's result was disturbed: %+v", posRep)
	}
}

// TestCounterExampleLimit checks the truncation constant is honored: the
// default shows DefaultCounterExampleLimit literals, and a custom limit
// threads from Options through Prove into the report.
func TestCounterExampleLimit(t *testing.T) {
	lits := make([]string, 12)
	for i := range lits {
		lits[i] = "(> x 0)"
	}
	failed := ObligationResult{
		Obligation: Obligation{Kind: CaseClause, Description: "synthetic"},
		Outcome:    simplify.Outcome{Result: simplify.Unknown, CounterExample: lits},
	}

	def := &Report{Qualifier: "q", Results: []ObligationResult{failed}}
	if s := def.String(); strings.Count(s, "(> x 0)") != DefaultCounterExampleLimit ||
		!strings.Contains(s, "(4 more literals)") {
		t.Errorf("default truncation wrong:\n%s", s)
	}

	custom := &Report{Qualifier: "q", Results: []ObligationResult{failed}, CounterExampleLimit: 2}
	if s := custom.String(); strings.Count(s, "(> x 0)") != 2 ||
		!strings.Contains(s, "(10 more literals)") {
		t.Errorf("custom truncation wrong:\n%s", s)
	}
}

func TestCounterExampleLimitThreadsThroughProve(t *testing.T) {
	// Broken pos (subtraction instead of multiplication) fails its
	// obligations, exercising the limit plumbing end to end.
	broken := strings.Replace(quals.Pos, "E1 * E2", "E1 - E2", 1)
	reg, err := qdl.Load(map[string]string{"pos.qdl": broken, "neg.qdl": quals.Neg})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.CounterExampleLimit = 1
	r, err := Prove(reg.Lookup("pos"), reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sound() {
		t.Fatal("broken pos proved sound")
	}
	if r.CounterExampleLimit != 1 {
		t.Errorf("report limit = %d, want 1", r.CounterExampleLimit)
	}
	for _, res := range r.Failed() {
		if len(res.Outcome.CounterExample) > 1 &&
			!strings.Contains(r.String(), "more literals") {
			t.Error("limit 1 did not truncate a multi-literal counterexample")
		}
	}
}

// TestProveCacheHitsReported: re-proving a qualifier against a shared cache
// serves every non-vacuous obligation from memory, and the report says so.
func TestProveCacheHitsReported(t *testing.T) {
	reg := standard(t)
	d := reg.Lookup("pos")
	opts := DefaultOptions()
	opts.Cache = simplify.NewCache(0)

	first, err := Prove(d, reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Prove(d, reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	nonVacuous := 0
	for _, res := range second.Results {
		if !res.Obligation.Vacuous {
			nonVacuous++
		}
	}
	if nonVacuous == 0 {
		t.Fatal("pos has no non-vacuous obligations?")
	}
	if second.CacheHits != nonVacuous {
		t.Errorf("second run: %d cache hits, want %d (every non-vacuous obligation)", second.CacheHits, nonVacuous)
	}
	if first.Sound() != second.Sound() {
		t.Error("cached run changed the verdict")
	}
}

package corpus

// Mingetty returns the getty subject for Table 2: an issue-banner printer
// and login-name prompt with the shape of mingetty 0.9.4. Its single user
// annotation is the untainted format parameter of its error() logger; every
// format string is constant, so no casts are needed (section 6.3).
func Mingetty() Program {
	return Program{
		Name:        "mingetty",
		Description: "console getty (stand-in for mingetty 0.9.4)",
		Source:      mingettySource,
	}
}

const mingettySource = `
/* mingetty.c - minimal getty: print the issue banner, prompt for a login
 * name, validate it, and hand off to login. Terminal input is simulated by
 * a scripted response table.
 */

int printf(char * untainted format, ...);
int error(char * untainted format, ...);
void exit(int code);

char* tty = "tty1";
char* hostname = "repro";
char* osname = "cminor 1.0";

/* simulated keyboard input: successive responses to the login prompt */
char* responses[4];
int response_count = 0;
int response_next = 0;

void setup_input() {
  responses[0] = "";
  responses[1] = "al ice";
  responses[2] = "alice";
  response_count = 3;
  response_next = 0;
}

char* next_response() {
  if (response_next >= response_count) {
    error("mingetty: out of input on %s", tty);
    return "";
  }
  char* r = responses[response_next];
  response_next = response_next + 1;
  return r;
}

int valid_logname(char* name) {
  if (name[0] == 0) {
    return 0;
  }
  int i = 0;
  while (name[i] != 0) {
    int c = name[i];
    if (c == ' ' || c == '\t') {
      return 0;
    }
    if (c < 32 || c > 126) {
      return 0;
    }
    i = i + 1;
  }
  return 1;
}

void print_issue() {
  printf("\n");
  printf("%s\n", osname);
  printf("Kernel 2.4.18 on an i686\n");
  printf("\n");
  printf("%s ", hostname);
  printf("%s\n", tty);
  printf("\n");
}

void update_utmp(char* user) {
  /* the real mingetty writes a utmp record here */
  printf("utmp: LOGIN_PROCESS %s on %s\n", user, tty);
}

char* read_logname() {
  while (1) {
    printf("%s login: ", hostname);
    char* name;
    name = next_response();
    int ok;
    ok = valid_logname(name);
    if (ok == 1) {
      return name;
    }
    if (name[0] == 0) {
      printf("\n");
    } else {
      error("mingetty: bad login name %c...\n", name[0]);
      printf("login incorrect\n");
    }
    if (response_next >= response_count) {
      error("mingetty: giving up on %s", tty);
      exit(1);
    }
  }
  return "";
}

int main() {
  setup_input();
  printf("mingetty: starting on %s\n", tty);
  print_issue();
  char* user;
  user = read_logname();
  update_utmp(user);
  printf("spawning: /bin/login -- %s\n", user);
  printf("mingetty: done\n");
  return 0;
}
`

package corpus

// Identd returns the ident-daemon subject for Table 2: a query loop with
// the shape of identd 1.0. Every format string is a literal, so the
// constants-are-trusted clause makes the program check with no annotations
// and no casts at all, matching the paper's row.
func Identd() Program {
	return Program{
		Name:        "identd",
		Description: "RFC 1413 ident daemon (stand-in for identd 1.0)",
		Source:      identdSource,
	}
}

const identdSource = `
/* identd.c - an RFC 1413 identification daemon. Connections are simulated
 * by a table of (local port, remote port) queries against a table of
 * simulated sockets.
 */

int printf(char * untainted format, ...);
void exit(int code);

/* simulated connection table: (lport, rport) -> owner */
int conn_lport[8];
int conn_rport[8];
char* conn_owner[8];
int conn_count = 0;

void conn_add(int lport, int rport, char* owner) {
  if (conn_count >= 8) {
    return;
  }
  conn_lport[conn_count] = lport;
  conn_rport[conn_count] = rport;
  conn_owner[conn_count] = owner;
  conn_count = conn_count + 1;
}

void setup_conns() {
  conn_add(113, 6191, "root");
  conn_add(22, 51004, "sshd");
  conn_add(6667, 40001, "alice");
  conn_add(25, 33211, "postfix");
}

/* incoming queries */
int query_lport[8];
int query_rport[8];
int query_count = 0;

void query_add(int lport, int rport) {
  if (query_count >= 8) {
    return;
  }
  query_lport[query_count] = lport;
  query_rport[query_count] = rport;
  query_count = query_count + 1;
}

void setup_queries() {
  query_add(6667, 40001);
  query_add(22, 51004);
  query_add(79, 1234);
  query_add(0, 0);
  query_add(70000, 1);
}

int lookup(int lport, int rport) {
  for (int i = 0; i < conn_count; i++) {
    if (conn_lport[i] == lport && conn_rport[i] == rport) {
      return i;
    }
  }
  return -1;
}

int valid_port(int p) {
  if (p <= 0 || p > 65535) {
    return 0;
  }
  return 1;
}

void handle_query(int lport, int rport) {
  printf("identd: query %d , %d\n", lport, rport);
  int okl;
  okl = valid_port(lport);
  int okr;
  okr = valid_port(rport);
  if (okl == 0 || okr == 0) {
    printf("%d , %d : ERROR : INVALID-PORT\r\n", lport, rport);
    return;
  }
  int idx;
  idx = lookup(lport, rport);
  if (idx < 0) {
    printf("%d , %d : ERROR : NO-USER\r\n", lport, rport);
    return;
  }
  printf("%d , %d : USERID : UNIX : %s\r\n", lport, rport, conn_owner[idx]);
}

int main() {
  setup_conns();
  setup_queries();
  printf("identd: listening on port %d\n", 113);
  for (int i = 0; i < query_count; i++) {
    handle_query(query_lport[i], query_rport[i]);
  }
  printf("identd: handled %d queries\n", query_count);
  printf("identd: exiting\n");
  return 0;
}
`

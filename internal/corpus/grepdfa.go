package corpus

// GrepDFA returns the grep-style subject for Table 1 and section 6.2: a
// from-scratch regular-expression engine built the way grep's dfa.c is
// built (Glushkov position automaton + lazy subset construction with a
// transition-table cache), annotated with nonnull following the paper's
// iterative process and with unique on the dfa global (figure 13). The
// program is runnable: main() exercises compilation and matching.
func GrepDFA() Program {
	return Program{
		Name:        "grep-dfa",
		Description: "DFA string-matching engine (stand-in for grep 2.5 dfa.c/dfa.h)",
		Source:      grepDFASource,
	}
}

const grepDFASource = `
/* dfa.c - deterministic finite automaton regular expression engine.
 *
 * Modeled on the matcher at the core of grep: a pattern is parsed into a
 * syntax tree, positions are assigned to leaves (Glushkov construction),
 * first/follow sets drive a lazy subset construction, and transitions are
 * cached in a per-state table. Syntax: literals, '.', '*', '|', '(' ')'.
 */

int printf(char* nonnull format, ...);
void exit(int code);

/* ---- syntax tree ---- */

/* node kinds */
/* 0 = literal char, 1 = any (.), 2 = star, 3 = concat, 4 = alternate,
   5 = empty, 6 = end marker, 7 = plus, 8 = optional, 9 = char class */

struct node {
  int kind;
  int ch;
  int posn;
  int nullable;
  int negated;     /* for char classes: [^...] */
  int* cset;       /* for char classes: 128 membership flags */
  struct node* left;
  struct node* right;
};

struct parsectx {
  char* nonnull pat;
  int at;
  int err;
  int nposs;
};

/* ---- the compiled automaton ---- */

struct dfastate {
  int npos;              /* positions incl. the end marker */
  int* nonnull pchar;    /* per-position char (-1 any, -2 end marker, -3 class) */
  int* nonnull cclass;   /* npos x 128 class membership for -3 positions */
  int* nonnull follow;   /* npos x npos follow matrix */
  int* nonnull first;    /* first set of the augmented tree */
  int nstates;
  int salloc;
  int* nonnull states;     /* nstates x npos membership */
  int* nonnull accepting;  /* per state */
  int* nonnull trans;      /* nstates x 128 cached transitions, -1 unbuilt */
  int err;
};

/* The automaton under construction: the sole reference to its state
   (section 6.2). */
struct dfastate* nonnull unique dfa;

/* ---- small utilities ---- */

int cstrlen(char* nonnull s) {
  int n = 0;
  while (s[n] != 0) {
    n = n + 1;
  }
  return n;
}

int peekc(struct parsectx* nonnull ctx) {
  char* nonnull p = ctx->pat;
  int c = p[ctx->at];
  return c;
}

void advance(struct parsectx* nonnull ctx) {
  ctx->at = ctx->at + 1;
}

int ismeta(int c) {
  if (c == '(' || c == ')' || c == '|' || c == '*' || c == '.') {
    return 1;
  }
  return 0;
}

/* ---- parsing ---- */

struct node* nonnull mknode(struct parsectx* nonnull ctx, int kind, int ch) {
  struct node* nonnull n;
  n = (struct node* nonnull) malloc(sizeof(struct node));
  n->kind = kind;
  n->ch = ch;
  n->posn = -1;
  n->nullable = 0;
  n->negated = 0;
  n->cset = NULL;
  n->left = NULL;
  n->right = NULL;
  if (kind == 0 || kind == 1 || kind == 6 || kind == 9) {
    n->posn = ctx->nposs;
    ctx->nposs = ctx->nposs + 1;
  }
  return n;
}

struct node* nonnull parse_alt(struct parsectx* nonnull ctx);

struct node* nonnull parse_atom(struct parsectx* nonnull ctx) {
  int c;
  c = peekc(ctx);
  if (c == '(') {
    advance(ctx);
    struct node* nonnull inner;
    inner = parse_alt(ctx);
    int d;
    d = peekc(ctx);
    if (d == ')') {
      advance(ctx);
    } else {
      ctx->err = 1;
    }
    return inner;
  }
  if (c == '.') {
    advance(ctx);
    struct node* nonnull any;
    any = mknode(ctx, 1, 0);
    return any;
  }
  if (c == '[') {
    advance(ctx);
    struct node* nonnull cls;
    cls = mknode(ctx, 9, 0);
    cls->cset = (int* nonnull) malloc(sizeof(int) * 128);
    int* nonnull cs = (int* nonnull) cls->cset;
    for (int i = 0; i < 128; i++) {
      cs[i] = 0;
    }
    int d;
    d = peekc(ctx);
    if (d == '^') {
      cls->negated = 1;
      advance(ctx);
      d = peekc(ctx);
    }
    while (d != ']' && d != 0) {
      int lo = d;
      advance(ctx);
      d = peekc(ctx);
      if (d == '-') {
        /* a-z style range, unless '-' is the last member */
        advance(ctx);
        int hi;
        hi = peekc(ctx);
        if (hi == ']' || hi == 0) {
          if (lo >= 0 && lo < 128) {
            cs[lo] = 1;
          }
          cs['-'] = 1;
          d = hi;
          continue;
        }
        advance(ctx);
        for (int r = lo; r <= hi; r++) {
          if (r >= 0 && r < 128) {
            cs[r] = 1;
          }
        }
        d = peekc(ctx);
        continue;
      }
      if (lo >= 0 && lo < 128) {
        cs[lo] = 1;
      }
    }
    if (d == ']') {
      advance(ctx);
    } else {
      ctx->err = 1;
    }
    return cls;
  }
  if (c == '\\') {
    /* escape: the next character is a literal */
    advance(ctx);
    int esc;
    esc = peekc(ctx);
    if (esc == 0) {
      ctx->err = 1;
      struct node* nonnull bad;
      bad = mknode(ctx, 5, 0);
      return bad;
    }
    advance(ctx);
    struct node* nonnull lit2;
    lit2 = mknode(ctx, 0, esc);
    return lit2;
  }
  if (c == 0 || c == ')' || c == '|' || c == '*') {
    struct node* nonnull e;
    e = mknode(ctx, 5, 0);
    return e;
  }
  advance(ctx);
  struct node* nonnull lit;
  lit = mknode(ctx, 0, c);
  return lit;
}

struct node* nonnull parse_piece(struct parsectx* nonnull ctx) {
  struct node* nonnull a;
  a = parse_atom(ctx);
  int c;
  c = peekc(ctx);
  while (c == '*' || c == '+' || c == '?') {
    advance(ctx);
    int kind = 2;
    if (c == '+') {
      kind = 7;
    }
    if (c == '?') {
      kind = 8;
    }
    struct node* nonnull s;
    s = mknode(ctx, kind, 0);
    s->left = a;
    a = s;
    c = peekc(ctx);
  }
  return a;
}

struct node* nonnull parse_concat(struct parsectx* nonnull ctx) {
  struct node* nonnull lhs;
  lhs = parse_piece(ctx);
  int c;
  c = peekc(ctx);
  while (c != 0 && c != '|' && c != ')') {
    struct node* nonnull rhs;
    rhs = parse_piece(ctx);
    struct node* nonnull cat;
    cat = mknode(ctx, 3, 0);
    cat->left = lhs;
    cat->right = rhs;
    lhs = cat;
    c = peekc(ctx);
  }
  return lhs;
}

struct node* nonnull parse_alt(struct parsectx* nonnull ctx) {
  struct node* nonnull lhs;
  lhs = parse_concat(ctx);
  int c;
  c = peekc(ctx);
  while (c == '|') {
    advance(ctx);
    struct node* nonnull rhs;
    rhs = parse_concat(ctx);
    struct node* nonnull alt;
    alt = mknode(ctx, 4, 0);
    alt->left = lhs;
    alt->right = rhs;
    lhs = alt;
    c = peekc(ctx);
  }
  return lhs;
}

/* ---- position computations (Glushkov) ---- */

int compute_nullable(struct node* nonnull n) {
  if (n->kind == 0 || n->kind == 1 || n->kind == 6 || n->kind == 9) {
    n->nullable = 0;
    return 0;
  }
  if (n->kind == 5) {
    n->nullable = 1;
    return 1;
  }
  if (n->kind == 7) {
    /* X+ is nullable exactly when X is */
    struct node* nonnull pc = (struct node* nonnull) n->left;
    int pn;
    pn = compute_nullable(pc);
    n->nullable = pn;
    return pn;
  }
  if (n->kind == 8) {
    /* X? is always nullable */
    struct node* nonnull oc = (struct node* nonnull) n->left;
    int on;
    on = compute_nullable(oc);
    n->nullable = 1;
    return 1;
  }
  if (n->kind == 2) {
    /* The kind test guarantees a child, but the type system cannot see
       that (flow-insensitivity): cast, as the paper does. */
    struct node* nonnull l = (struct node* nonnull) n->left;
    int ln;
    ln = compute_nullable(l);
    n->nullable = 1;
    return 1;
  }
  struct node* nonnull l2 = (struct node* nonnull) n->left;
  struct node* nonnull r2 = (struct node* nonnull) n->right;
  int a;
  a = compute_nullable(l2);
  int b;
  b = compute_nullable(r2);
  if (n->kind == 3) {
    if (a == 1 && b == 1) {
      n->nullable = 1;
    } else {
      n->nullable = 0;
    }
  } else {
    if (a == 1 || b == 1) {
      n->nullable = 1;
    } else {
      n->nullable = 0;
    }
  }
  return n->nullable;
}

void firstset(struct node* nonnull n, int* nonnull set) {
  if (n->kind == 0 || n->kind == 1 || n->kind == 6 || n->kind == 9) {
    set[n->posn] = 1;
    return;
  }
  if (n->kind == 5) {
    return;
  }
  if (n->kind == 2 || n->kind == 7 || n->kind == 8) {
    struct node* nonnull l = (struct node* nonnull) n->left;
    firstset(l, set);
    return;
  }
  struct node* nonnull l2 = (struct node* nonnull) n->left;
  struct node* nonnull r2 = (struct node* nonnull) n->right;
  if (n->kind == 4) {
    firstset(l2, set);
    firstset(r2, set);
    return;
  }
  firstset(l2, set);
  if (l2->nullable == 1) {
    firstset(r2, set);
  }
}

void lastset(struct node* nonnull n, int* nonnull set) {
  if (n->kind == 0 || n->kind == 1 || n->kind == 6 || n->kind == 9) {
    set[n->posn] = 1;
    return;
  }
  if (n->kind == 5) {
    return;
  }
  if (n->kind == 2 || n->kind == 7 || n->kind == 8) {
    struct node* nonnull l = (struct node* nonnull) n->left;
    lastset(l, set);
    return;
  }
  struct node* nonnull l2 = (struct node* nonnull) n->left;
  struct node* nonnull r2 = (struct node* nonnull) n->right;
  if (n->kind == 4) {
    lastset(l2, set);
    lastset(r2, set);
    return;
  }
  lastset(r2, set);
  if (r2->nullable == 1) {
    lastset(l2, set);
  }
}

void add_follow(int* nonnull from, int* nonnull to) {
  int np = dfa->npos;
  for (int i = 0; i < np; i++) {
    if (from[i] == 1) {
      for (int j = 0; j < np; j++) {
        if (to[j] == 1) {
          dfa->follow[i * np + j] = 1;
        }
      }
    }
  }
}

void computefollow(struct node* nonnull n) {
  if (n->kind == 0 || n->kind == 1 || n->kind == 5 || n->kind == 6 || n->kind == 9) {
    return;
  }
  int np = dfa->npos;
  if (n->kind == 8) {
    struct node* nonnull oc = (struct node* nonnull) n->left;
    computefollow(oc);
    return;
  }
  if (n->kind == 2 || n->kind == 7) {
    struct node* nonnull l = (struct node* nonnull) n->left;
    computefollow(l);
    int* nonnull lastl;
    lastl = (int* nonnull) malloc(sizeof(int) * np);
    int* nonnull firstl;
    firstl = (int* nonnull) malloc(sizeof(int) * np);
    lastset(l, lastl);
    firstset(l, firstl);
    add_follow(lastl, firstl);
    return;
  }
  struct node* nonnull l2 = (struct node* nonnull) n->left;
  struct node* nonnull r2 = (struct node* nonnull) n->right;
  computefollow(l2);
  computefollow(r2);
  if (n->kind == 3) {
    int* nonnull lastl2;
    lastl2 = (int* nonnull) malloc(sizeof(int) * np);
    int* nonnull firstr;
    firstr = (int* nonnull) malloc(sizeof(int) * np);
    lastset(l2, lastl2);
    firstset(r2, firstr);
    add_follow(lastl2, firstr);
  }
}

void record_pchar(struct node* nonnull n) {
  if (n->kind == 0) {
    dfa->pchar[n->posn] = n->ch;
    return;
  }
  if (n->kind == 1) {
    dfa->pchar[n->posn] = -1;
    return;
  }
  if (n->kind == 6) {
    dfa->pchar[n->posn] = -2;
    return;
  }
  if (n->kind == 9) {
    dfa->pchar[n->posn] = -3;
    int* nonnull cs = (int* nonnull) n->cset;
    for (int i = 0; i < 128; i++) {
      int member = cs[i];
      if (n->negated == 1) {
        if (member == 1) {
          member = 0;
        } else {
          member = 1;
        }
      }
      dfa->cclass[n->posn * 128 + i] = member;
    }
    return;
  }
  if (n->kind == 5) {
    return;
  }
  if (n->kind == 2 || n->kind == 7 || n->kind == 8) {
    struct node* nonnull l = (struct node* nonnull) n->left;
    record_pchar(l);
    return;
  }
  struct node* nonnull l2 = (struct node* nonnull) n->left;
  struct node* nonnull r2 = (struct node* nonnull) n->right;
  record_pchar(l2);
  record_pchar(r2);
}

/* ---- subset construction with a lazy transition cache ---- */

int state_lookup(int* nonnull set) {
  int np = dfa->npos;
  for (int s = 0; s < dfa->nstates; s++) {
    int same = 1;
    for (int i = 0; i < np; i++) {
      if (dfa->states[s * np + i] != set[i]) {
        same = 0;
      }
    }
    if (same == 1) {
      return s;
    }
  }
  return -1;
}

int state_add(int* nonnull set) {
  int np = dfa->npos;
  int idx;
  idx = state_lookup(set);
  if (idx >= 0) {
    return idx;
  }
  if (dfa->nstates >= dfa->salloc) {
    dfa->err = 1;
    return 0;
  }
  int s = dfa->nstates;
  for (int i = 0; i < np; i++) {
    dfa->states[s * np + i] = set[i];
  }
  int acc = 0;
  for (int i = 0; i < np; i++) {
    int pc = dfa->pchar[i];
    if (set[i] == 1 && pc == -2) {
      acc = 1;
    }
  }
  dfa->accepting[s] = acc;
  dfa->nstates = dfa->nstates + 1;
  return s;
}

int build_trans(int s, int c) {
  int np = dfa->npos;
  int* nonnull next;
  next = (int* nonnull) malloc(sizeof(int) * np);
  for (int i = 0; i < np; i++) {
    next[i] = 0;
  }
  for (int p = 0; p < np; p++) {
    if (dfa->states[s * np + p] == 1) {
      int pc = dfa->pchar[p];
      int match = 0;
      if (pc == -1) {
        match = 1;
      }
      if (pc == c) {
        match = 1;
      }
      if (pc == -3) {
        if (dfa->cclass[p * 128 + c] == 1) {
          match = 1;
        }
      }
      if (match == 1) {
        for (int q = 0; q < np; q++) {
          if (dfa->follow[p * np + q] == 1) {
            next[q] = 1;
          }
        }
      }
    }
  }
  int t;
  t = state_add(next);
  dfa->trans[s * 128 + c] = t;
  return t;
}

/* ---- compilation ---- */

void dfa_compile(char* nonnull pattern) {
  dfa = (struct dfastate* nonnull) malloc(sizeof(struct dfastate));
  struct parsectx ctx;
  ctx.pat = pattern;
  ctx.at = 0;
  ctx.err = 0;
  ctx.nposs = 0;
  struct node* nonnull root;
  root = parse_alt(&ctx);
  int trailing;
  trailing = peekc(&ctx);
  if (trailing != 0) {
    ctx.err = 1;
  }
  /* augment with the end marker */
  struct node* nonnull em;
  em = mknode(&ctx, 6, 0);
  struct node* nonnull aug;
  aug = mknode(&ctx, 3, 0);
  aug->left = root;
  aug->right = em;
  int np = ctx.nposs;
  dfa->npos = np;
  dfa->err = ctx.err;
  dfa->pchar = (int* nonnull) malloc(sizeof(int) * np);
  dfa->cclass = (int* nonnull) malloc(sizeof(int) * np * 128);
  record_pchar(aug);
  dfa->follow = (int* nonnull) malloc(sizeof(int) * np * np);
  int nn;
  nn = compute_nullable(aug);
  computefollow(aug);
  dfa->first = (int* nonnull) malloc(sizeof(int) * np);
  firstset(aug, dfa->first);
  dfa->salloc = 64;
  dfa->nstates = 0;
  dfa->states = (int* nonnull) malloc(sizeof(int) * 64 * np);
  dfa->accepting = (int* nonnull) malloc(sizeof(int) * 64);
  dfa->trans = (int* nonnull) malloc(sizeof(int) * 64 * 128);
  for (int i = 0; i < 64 * 128; i++) {
    dfa->trans[i] = -1;
  }
  int s0;
  s0 = state_add(dfa->first);
}

/* ---- execution ---- */

int dfaexec(char* nonnull str) {
  if (dfa->err == 1) {
    return 0;
  }
  int s = 0;
  int i = 0;
  int c = str[i];
  while (c != 0) {
    if (c < 0 || c >= 128) {
      return 0;
    }
    int t = dfa->trans[s * 128 + c];
    if (t < 0) {
      t = build_trans(s, c);
    }
    s = t;
    i = i + 1;
    c = str[i];
  }
  return dfa->accepting[s];
}

/* dfa_search: does any substring of str match? */
int dfa_search(char* nonnull str) {
  if (dfa->err == 1) {
    return 0;
  }
  int n;
  n = cstrlen(str);
  for (int start = 0; start <= n; start++) {
    int s = 0;
    if (dfa->accepting[0] == 1) {
      return 1;
    }
    int i = start;
    int c = str[i];
    while (c != 0) {
      if (c < 0 || c >= 128) {
        break;
      }
      int t = dfa->trans[s * 128 + c];
      if (t < 0) {
        t = build_trans(s, c);
      }
      s = t;
      if (dfa->accepting[s] == 1) {
        return 1;
      }
      i = i + 1;
      c = str[i];
    }
  }
  return 0;
}

/* ---- self-checking driver ---- */

int check_match(char* nonnull pattern, char* nonnull str, int expected) {
  dfa_compile(pattern);
  int got;
  got = dfaexec(str);
  if (got != expected) {
    printf("FAIL match /%s/ on \"%s\": got %d want %d\n", pattern, str, got, expected);
    return 1;
  }
  return 0;
}

int check_search(char* nonnull pattern, char* nonnull str, int expected) {
  dfa_compile(pattern);
  int got;
  got = dfa_search(str);
  if (got != expected) {
    printf("FAIL search /%s/ in \"%s\": got %d want %d\n", pattern, str, got, expected);
    return 1;
  }
  return 0;
}

int main() {
  int fails = 0;
  int r;
  r = check_match("abc", "abc", 1);
  fails += r;
  r = check_match("abc", "abd", 0);
  fails += r;
  r = check_match("a*b", "aaab", 1);
  fails += r;
  r = check_match("a*b", "b", 1);
  fails += r;
  r = check_match("a*b", "ac", 0);
  fails += r;
  r = check_match("a.c", "axc", 1);
  fails += r;
  r = check_match("a.c", "ac", 0);
  fails += r;
  r = check_match("ab|cd", "cd", 1);
  fails += r;
  r = check_match("ab|cd", "ad", 0);
  fails += r;
  r = check_match("(ab)*", "ababab", 1);
  fails += r;
  r = check_match("(ab)*", "aba", 0);
  fails += r;
  r = check_match("(a|b)*c", "abbac", 1);
  fails += r;
  r = check_match("", "", 1);
  fails += r;
  r = check_match("", "x", 0);
  fails += r;
  r = check_search("b*c", "aaabbbcd", 1);
  fails += r;
  r = check_search("xyz", "aaabbbcd", 0);
  fails += r;
  r = check_search("a.*d", "xxaynzdxx", 1);
  fails += r;
  r = check_match("[abc]d", "bd", 1);
  fails += r;
  r = check_match("[abc]d", "xd", 0);
  fails += r;
  r = check_match("[a-z]*", "hello", 1);
  fails += r;
  r = check_match("[a-z]*", "heLlo", 0);
  fails += r;
  r = check_match("[^0-9]+", "abc", 1);
  fails += r;
  r = check_match("[^0-9]+", "ab7c", 0);
  fails += r;
  r = check_match("ab+c", "abbbc", 1);
  fails += r;
  r = check_match("ab+c", "ac", 0);
  fails += r;
  r = check_match("ab?c", "abc", 1);
  fails += r;
  r = check_match("ab?c", "ac", 1);
  fails += r;
  r = check_match("ab?c", "abbc", 0);
  fails += r;
  r = check_match("a\\*b", "a*b", 1);
  fails += r;
  r = check_match("a\\*b", "aab", 0);
  fails += r;
  r = check_search("[0-9][0-9]*", "error code 404 seen", 1);
  fails += r;
  r = check_search("(GET|POST) /[a-z]*", "log: GET /index ok", 1);
  fails += r;
  printf("dfa: %d failures\n", fails);
  return fails;
}
`

package corpus

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
)

// This file generates synthetic multi-file source trees for repo-scale
// checking: tree tests, `make tree-smoke`, and BenchmarkCheckTree all need a
// corpus of hundreds of files that (a) is deterministic for a seed, so serial
// and parallel runs can be diffed byte-for-byte, (b) mixes clean and
// violating functions, so diagnostic assembly order is actually exercised,
// and (c) contains duplicated files, so the function cache and request
// coalescing see cross-file identical content.

// TreeFileName returns the root-relative path of file idx of a generated
// tree: files are spread over eight package directories.
func TreeFileName(idx int) string {
	return fmt.Sprintf("pkg%d/file%04d.c", idx%8, idx)
}

// TreeFile returns the deterministic source text of file idx of the
// synthetic tree with the given seed. Every fifth file duplicates its
// block's first file byte-for-byte (cross-file cache hits); the rest are
// unique.
func TreeFile(seed int64, idx int) string {
	if idx%5 == 4 {
		// Duplicate the block leader for cache-sharing realism.
		return TreeFile(seed, idx-4)
	}
	rng := rand.New(rand.NewSource(seed + int64(idx)*1000003))
	var b strings.Builder
	fmt.Fprintf(&b, "/* generated tree file %d */\n", idx)
	fmt.Fprintf(&b, "int* nonnull g%d;\n\n", idx)
	funcs := 4 + rng.Intn(5)
	for k := 0; k < funcs; k++ {
		switch rng.Intn(3) {
		case 0: // clean compute loop
			fmt.Fprintf(&b, "int compute%d_%d(int a, int b) {\n", idx, k)
			fmt.Fprintf(&b, "  int acc = %d;\n", rng.Intn(100))
			b.WriteString("  int i = 0;\n")
			fmt.Fprintf(&b, "  while (i < b) {\n    acc = acc + a + %d;\n    i = i + 1;\n  }\n", rng.Intn(10))
			b.WriteString("  return acc;\n}\n\n")
		case 1: // nonnull violation: unqualified pointer into a nonnull global
			fmt.Fprintf(&b, "void violate%d_%d(int* p) {\n", idx, k)
			fmt.Fprintf(&b, "  g%d = p;\n", idx)
			b.WriteString("}\n\n")
		default: // pointer-using function with a guarded dereference
			fmt.Fprintf(&b, "int read%d_%d(int* nonnull p, int n) {\n", idx, k)
			fmt.Fprintf(&b, "  int v = *p + %d;\n", rng.Intn(50))
			b.WriteString("  if (n > 0) {\n    v = v + n;\n  }\n")
			b.WriteString("  return v;\n}\n\n")
		}
	}
	return b.String()
}

// WriteTree generates an n-file synthetic source tree under dir, plus decoy
// entries (a vendored file, a testdata file, and a non-source file — each
// would fail to parse or change diagnostics if the walker's skip rules ever
// regressed). It returns the root-relative paths of the real files.
func WriteTree(dir string, n int, seed int64) ([]string, error) {
	paths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		rel := TreeFileName(i)
		full := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return nil, err
		}
		if err := os.WriteFile(full, []byte(TreeFile(seed, i)), 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, rel)
	}
	decoys := map[string]string{
		"vendor/decoy.c":   "this is not valid source (((",
		"testdata/decoy.c": "neither is this )))",
		"pkg0/notes.txt":   "not a source file at all",
	}
	for rel, body := range decoys {
		full := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return nil, err
		}
		if err := os.WriteFile(full, []byte(body), 0o644); err != nil {
			return nil, err
		}
	}
	return paths, nil
}

package corpus

import (
	"strings"
	"testing"

	"repro/internal/checker"
	"repro/internal/cminor"
	"repro/internal/interp"
	"repro/internal/quals"
)

func parseWith(t *testing.T, p Program, names map[string]bool) *cminor.Program {
	t.Helper()
	prog, err := cminor.Parse(p.Name+".c", p.Source, names)
	if err != nil {
		t.Fatalf("parse %s: %v", p.Name, err)
	}
	return prog
}

func taintReg(t *testing.T) map[string]bool {
	t.Helper()
	reg, err := quals.TaintWithConstants()
	if err != nil {
		t.Fatal(err)
	}
	return reg.Names()
}

func TestGrepDFATypechecksCleanly(t *testing.T) {
	reg := quals.MustStandard()
	p := GrepDFA()
	prog, err := cminor.Parse(p.Name+".c", p.Source, reg.Names())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res := checker.Check(prog, reg)
	for _, d := range res.Diags {
		t.Errorf("diagnostic: %s", d)
	}
}

func TestGrepDFARuns(t *testing.T) {
	reg := quals.MustStandard()
	p := GrepDFA()
	prog, err := cminor.Parse(p.Name+".c", p.Source, reg.Names())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := interp.Run(prog, reg, interp.Options{RuntimeChecks: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Failure != nil {
		t.Fatalf("runtime check failed: %v", res.Failure)
	}
	if res.Exit != 0 {
		t.Errorf("dfa self-checks failed (exit %d):\n%s", res.Exit, res.Output)
	}
	if !strings.Contains(res.Output, "dfa: 0 failures") {
		t.Errorf("output = %q", res.Output)
	}
}

func TestBftpdHasExactlyTheKnownBug(t *testing.T) {
	reg, err := quals.TaintWithConstants()
	if err != nil {
		t.Fatal(err)
	}
	prog := parseWith(t, Bftpd(), reg.Names())
	res := checker.Check(prog, reg)
	var errs []checker.Diagnostic
	for _, d := range res.Diags {
		errs = append(errs, d)
	}
	if len(errs) != 1 {
		t.Fatalf("bftpd diagnostics = %v, want exactly 1", errs)
	}
	if !strings.Contains(errs[0].Msg, "untainted") || !strings.Contains(errs[0].Msg, "d_name") {
		t.Errorf("diagnostic = %s, want the d_name format-string error", errs[0])
	}
}

func TestBftpdFixedIsClean(t *testing.T) {
	reg, err := quals.TaintWithConstants()
	if err != nil {
		t.Fatal(err)
	}
	prog := parseWith(t, BftpdFixed(), reg.Names())
	res := checker.Check(prog, reg)
	for _, d := range res.Diags {
		t.Errorf("diagnostic: %s", d)
	}
}

func TestMingettyAndIdentdClean(t *testing.T) {
	reg, err := quals.TaintWithConstants()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Program{Mingetty(), Identd()} {
		prog := parseWith(t, p, reg.Names())
		res := checker.Check(prog, reg)
		for _, d := range res.Diags {
			t.Errorf("%s: %s", p.Name, d)
		}
		if res.Stats.QualCasts["untainted"] != 0 {
			t.Errorf("%s required %d untainted casts, want 0", p.Name, res.Stats.QualCasts["untainted"])
		}
	}
}

func TestTaintSubjectsRun(t *testing.T) {
	reg, err := quals.TaintWithConstants()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Program{Bftpd(), BftpdFixed(), Mingetty(), Identd()} {
		prog := parseWith(t, p, reg.Names())
		res, err := interp.Run(prog, reg, interp.Options{})
		if err != nil {
			t.Errorf("%s: run failed: %v", p.Name, err)
			continue
		}
		if res.Exit != 0 {
			t.Errorf("%s: exit %d\n%s", p.Name, res.Exit, res.Output)
		}
	}
}

func TestBftpdExploitCrashesAtRuntime(t *testing.T) {
	// The statically-detected bug is a real runtime vulnerability: with a
	// malicious file name planted, LIST crashes reading absent varargs.
	reg, err := quals.TaintWithConstants()
	if err != nil {
		t.Fatal(err)
	}
	prog := parseWith(t, BftpdExploit(), reg.Names())
	_, err = interp.Run(prog, reg, interp.Options{})
	if err == nil || !strings.Contains(err.Error(), "format-string vulnerability") {
		t.Errorf("expected the exploit to crash, got %v", err)
	}
	// The fixed server survives the same malicious file name.
	fixed := BftpdFixed()
	fixed.Source = strings.Replace(fixed.Source, "int exploit_mode = 0;", "int exploit_mode = 1;", 1)
	prog2 := parseWith(t, fixed, reg.Names())
	res, err := interp.Run(prog2, reg, interp.Options{})
	if err != nil {
		t.Fatalf("fixed server crashed: %v", err)
	}
	if !strings.Contains(res.Output, "%s%s%s-exploit") {
		t.Errorf("fixed server should print the hostile name literally:\n%s", res.Output)
	}
}

func TestCorpusLineCounts(t *testing.T) {
	// Shape check: the corpus subjects are substantial programs, ordered
	// like the paper's (grep >> bftpd > mingetty ~ identd).
	g, b, m, i := GrepDFA().Lines(), Bftpd().Lines(), Mingetty().Lines(), Identd().Lines()
	if g < 300 {
		t.Errorf("grep-dfa has %d lines, want a substantial program", g)
	}
	if b < 150 || m < 60 || i < 60 {
		t.Errorf("subject sizes: bftpd=%d mingetty=%d identd=%d", b, m, i)
	}
	if !(g > b && b > m) {
		t.Errorf("size ordering violated: grep=%d bftpd=%d mingetty=%d", g, b, m)
	}
}

func TestNonBlankLines(t *testing.T) {
	src := "\n// comment\nint x;\n\n/* block\n comment */\nint y; /* tail */\n"
	if n := NonBlankLines(src); n != 2 {
		t.Errorf("NonBlankLines = %d, want 2", n)
	}
}

// TestUniqueInvariantHoldsDynamically validates the unique invariant over
// the interpreter's entire final store: the dfa global points to a heap
// object to which no other live cell points. The paper cannot check this at
// run time (section 2.2.3); the interpreter's store is fully inspectable,
// so the reproduction can.
func TestUniqueInvariantHoldsDynamically(t *testing.T) {
	reg := quals.MustStandard()
	p := GrepDFA()
	prog := parseWith(t, p, reg.Names())
	var violation string
	res, err := interp.Run(prog, reg, interp.Options{
		RuntimeChecks: true,
		Inspect: func(in *interp.Inspection) {
			v, ok := in.Global("dfa")
			if !ok {
				violation = "dfa global missing"
				return
			}
			if v.Kind != interp.VPtr || v.Addr.IsNull() {
				violation = "dfa is not a live pointer at exit"
				return
			}
			if !in.IsHeap(v.Addr.Base) {
				violation = "dfa does not point to the heap"
				return
			}
			self, _ := in.GlobalAddr("dfa")
			if n := in.ReferenceCount(v.Addr.Base, self); n != 0 {
				violation = "uniqueness violated: other cells reference dfa's object"
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 0 {
		t.Fatalf("dfa self-checks failed:\n%s", res.Output)
	}
	if violation != "" {
		t.Error(violation)
	}
}

// TestUniquenessViolationObservableDynamically: the aliasing program the
// checker rejects really does break the invariant at run time — evidence
// that the static rule prevents real violations, not stylistic ones.
func TestUniquenessViolationObservableDynamically(t *testing.T) {
	reg := quals.MustStandard()
	src := `
int* unique p;
int* leak;
int main() {
  p = (int*)malloc(sizeof(int) * 2);
  leak = p;   /* rejected by the checker; run it anyway */
  return 0;
}
`
	prog, err := cminor.Parse("violate.c", src, reg.Names())
	if err != nil {
		t.Fatal(err)
	}
	res := checker.Check(prog, reg)
	if len(res.Errors("disallow")) == 0 {
		t.Fatal("checker did not reject the aliasing program")
	}
	var refs int
	if _, err := interp.Run(prog, reg, interp.Options{
		Inspect: func(in *interp.Inspection) {
			v, _ := in.Global("p")
			self, _ := in.GlobalAddr("p")
			refs = in.ReferenceCount(v.Addr.Base, self)
		},
	}); err != nil {
		t.Fatal(err)
	}
	if refs == 0 {
		t.Error("expected the rejected program to actually violate uniqueness at run time")
	}
}

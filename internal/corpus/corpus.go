// Package corpus provides the synthetic evaluation programs standing in for
// the paper's open-source subjects (grep's dfa.c, bftpd, mingetty, identd).
// Each program is written in the cminor subset, is annotated the way the
// paper's experiments annotate their subjects, and is runnable under
// internal/interp so tests can validate behaviour, not just typechecking.
// See DESIGN.md for the substitution rationale.
package corpus

import "strings"

// Program is one evaluation subject.
type Program struct {
	Name        string
	Description string
	Source      string
}

// Lines counts non-blank, non-comment source lines (the paper's "lines"
// metric).
func (p Program) Lines() int { return NonBlankLines(p.Source) }

// NonBlankLines counts non-blank, non-comment lines.
func NonBlankLines(src string) int {
	n := 0
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if inBlock {
			if idx := strings.Index(s, "*/"); idx >= 0 {
				s = strings.TrimSpace(s[idx+2:])
				inBlock = false
			} else {
				continue
			}
		}
		if idx := strings.Index(s, "/*"); idx >= 0 && !strings.Contains(s[:idx], "//") {
			if !strings.Contains(s[idx:], "*/") {
				inBlock = true
			}
			s = strings.TrimSpace(s[:idx])
		}
		if s == "" || strings.HasPrefix(s, "//") {
			continue
		}
		n++
	}
	return n
}

// All returns every corpus program.
func All() []Program {
	return []Program{GrepDFA(), Bftpd(), Mingetty(), Identd()}
}

package corpus

import "strings"

// Bftpd returns the FTP-server subject for Table 2: a command-loop server
// with the same shape as bftpd 1.0.11, including the real format-string bug
// Shankar et al. and the paper found — a directory entry name passed
// directly as sendstrf's format string. The two annotations the paper
// reports are the untainted format parameters of sendstrf and syslog.
func Bftpd() Program {
	return Program{
		Name:        "bftpd",
		Description: "FTP server command loop (stand-in for bftpd 1.0.11)",
		Source:      bftpdSource,
	}
}

// BftpdFixed is bftpd with the vulnerable call repaired the way the real
// fix repaired it: the entry name becomes an argument of a constant format.
func BftpdFixed() Program {
	p := Bftpd()
	p.Name = "bftpd-fixed"
	p.Source = strings.Replace(p.Source,
		`sendstrf(sock, entry->d_name);`,
		`sendstrf(sock, "%s", entry->d_name);`, 1)
	return p
}

// BftpdExploit is bftpd with the malicious directory entry planted, for
// demonstrating the crash at run time.
func BftpdExploit() Program {
	p := Bftpd()
	p.Name = "bftpd-exploit"
	p.Source = strings.Replace(p.Source, "int exploit_mode = 0;", "int exploit_mode = 1;", 1)
	return p
}

const bftpdSource = `
/* bftpd.c - a small FTP server command loop.
 *
 * The network is simulated: a session script provides the client's
 * commands, and sendstrf(sock, fmt, ...) stands in for formatted writes to
 * the control connection, exactly the sink the taintedness analysis guards.
 */

int printf(char * untainted format, ...);
int sendstrf(int sock, char * untainted format, ...);
int syslog(int priority, char * untainted format, ...);
void exit(int code);

/* ---- simulated filesystem ---- */

struct dirent {
  char* d_name;
  int size;
};

struct dirent fs[8];
int fs_count = 0;
int exploit_mode = 0;

void fs_add(char* name, int size) {
  if (fs_count >= 8) {
    return;
  }
  fs[fs_count].d_name = name;
  fs[fs_count].size = size;
  fs_count = fs_count + 1;
}

void setup_fs() {
  fs_add("readme.txt", 120);
  fs_add("motd", 48);
  fs_add("upload", 0);
  if (exploit_mode == 1) {
    /* A client-controlled file name containing conversion specifiers:
       the classic bftpd exploit. */
    fs_add("%s%s%s-exploit", 666);
  }
}

/* ---- simulated session script ---- */

char* script_cmds[24];
char* script_args[24];
int script_len = 0;

void script_add(char* cmd, char* arg) {
  if (script_len >= 24) {
    return;
  }
  script_cmds[script_len] = cmd;
  script_args[script_len] = arg;
  script_len = script_len + 1;
}

void setup_session() {
  script_add("USER", "alice");
  script_add("PASS", "secret");
  script_add("SYST", "");
  script_add("FEAT", "");
  script_add("PWD", "");
  script_add("TYPE", "I");
  script_add("PASV", "");
  script_add("LIST", "");
  script_add("SIZE", "readme.txt");
  script_add("MDTM", "readme.txt");
  script_add("RETR", "readme.txt");
  script_add("CWD", "upload");
  script_add("STOR", "notes.txt");
  script_add("CDUP", "");
  script_add("MKD", "incoming");
  script_add("DELE", "motd");
  script_add("HELP", "");
  script_add("NOOP", "");
  script_add("QUIT", "");
}

/* ---- helpers ---- */

int cstreq(char* a, char* b) {
  int i = 0;
  while (a[i] != 0 && b[i] != 0) {
    if (a[i] != b[i]) {
      return 0;
    }
    i = i + 1;
  }
  if (a[i] == 0 && b[i] == 0) {
    return 1;
  }
  return 0;
}

/* ---- session state ---- */

int logged_in = 0;
char* current_user = "";
char* cwd = "/";
int type_binary = 0;

/* ---- command handlers ---- */

void cmd_user(int sock, char* arg) {
  current_user = arg;
  syslog(6, "login attempt for %s", arg);
  sendstrf(sock, "331 Password required for %s.\r\n", arg);
}

void cmd_pass(int sock, char* arg) {
  logged_in = 1;
  syslog(6, "user %s authenticated", current_user);
  sendstrf(sock, "230 User %s logged in.\r\n", current_user);
}

void cmd_syst(int sock) {
  sendstrf(sock, "215 UNIX Type: L8\r\n");
}

void cmd_pwd(int sock) {
  sendstrf(sock, "257 \"%s\" is the current directory.\r\n", cwd);
}

void cmd_type(int sock, char* arg) {
  int binary;
  binary = cstreq(arg, "I");
  if (binary == 1) {
    type_binary = 1;
    sendstrf(sock, "200 Type set to I.\r\n");
  } else {
    type_binary = 0;
    sendstrf(sock, "200 Type set to A.\r\n");
  }
}

void cmd_list(int sock) {
  if (logged_in == 0) {
    sendstrf(sock, "530 Not logged in.\r\n");
    return;
  }
  sendstrf(sock, "150 Opening ASCII mode data connection for file list.\r\n");
  for (int i = 0; i < fs_count; i++) {
    struct dirent* entry = &fs[i];
    /* THE BUG (bugtraq, December 2000): the directory entry name -- pure
       client-controlled data -- is used as the format string. */
    sendstrf(sock, entry->d_name);
    sendstrf(sock, "  %d bytes\r\n", entry->size);
  }
  sendstrf(sock, "226 Transfer complete.\r\n");
}

void cmd_retr(int sock, char* arg) {
  if (logged_in == 0) {
    sendstrf(sock, "530 Not logged in.\r\n");
    return;
  }
  int found = -1;
  for (int i = 0; i < fs_count; i++) {
    struct dirent* entry = &fs[i];
    int same;
    same = cstreq(entry->d_name, arg);
    if (same == 1) {
      found = i;
    }
  }
  if (found < 0) {
    sendstrf(sock, "550 %s: No such file or directory.\r\n", arg);
    return;
  }
  sendstrf(sock, "150 Opening data connection for %s.\r\n", arg);
  sendstrf(sock, "226 Transfer complete. %d bytes sent.\r\n", fs[found].size);
  syslog(6, "file %s sent to %s", arg, current_user);
}

void cmd_help(int sock) {
  sendstrf(sock, "214-The following commands are recognized.\r\n");
  sendstrf(sock, " USER PASS SYST PWD TYPE LIST RETR HELP NOOP QUIT\r\n");
  sendstrf(sock, "214 Direct comments to ftp-bugs.\r\n");
}

void cmd_noop(int sock) {
  sendstrf(sock, "200 NOOP command successful.\r\n");
}

void cmd_quit(int sock) {
  syslog(6, "user %s logged out", current_user);
  sendstrf(sock, "221 Goodbye.\r\n");
}

void cmd_feat(int sock) {
  sendstrf(sock, "211-Extensions supported:\r\n");
  sendstrf(sock, " SIZE\r\n");
  sendstrf(sock, " MDTM\r\n");
  sendstrf(sock, " REST STREAM\r\n");
  sendstrf(sock, "211 End.\r\n");
}

void cmd_pasv(int sock) {
  int p1 = 195;
  int p2 = 149;
  sendstrf(sock, "227 Entering Passive Mode (127,0,0,1,%d,%d).\r\n", p1, p2);
  syslog(7, "passive data port %d", p1 * 256 + p2);
}

int file_index(char* name) {
  for (int i = 0; i < fs_count; i++) {
    struct dirent* entry = &fs[i];
    int same;
    same = cstreq(entry->d_name, name);
    if (same == 1) {
      return i;
    }
  }
  return -1;
}

void cmd_size(int sock, char* arg) {
  int idx;
  idx = file_index(arg);
  if (idx < 0) {
    sendstrf(sock, "550 %s: No such file or directory.\r\n", arg);
    return;
  }
  sendstrf(sock, "213 %d\r\n", fs[idx].size);
}

void cmd_mdtm(int sock, char* arg) {
  int idx;
  idx = file_index(arg);
  if (idx < 0) {
    sendstrf(sock, "550 %s: No such file or directory.\r\n", arg);
    return;
  }
  sendstrf(sock, "213 20050612%d\r\n", 101500 + idx);
}

void cmd_cwd(int sock, char* arg) {
  if (logged_in == 0) {
    sendstrf(sock, "530 Not logged in.\r\n");
    return;
  }
  cwd = arg;
  sendstrf(sock, "250 CWD command successful.\r\n");
  syslog(7, "cwd to %s", arg);
}

void cmd_cdup(int sock) {
  cwd = "/";
  sendstrf(sock, "250 CDUP command successful.\r\n");
}

void cmd_mkd(int sock, char* arg) {
  if (logged_in == 0) {
    sendstrf(sock, "530 Not logged in.\r\n");
    return;
  }
  sendstrf(sock, "257 \"%s\" directory created.\r\n", arg);
  syslog(6, "mkdir %s by %s", arg, current_user);
}

void cmd_dele(int sock, char* arg) {
  if (logged_in == 0) {
    sendstrf(sock, "530 Not logged in.\r\n");
    return;
  }
  int idx;
  idx = file_index(arg);
  if (idx < 0) {
    sendstrf(sock, "550 %s: No such file or directory.\r\n", arg);
    return;
  }
  fs[idx].d_name = "";
  sendstrf(sock, "250 DELE command successful.\r\n");
  syslog(6, "deleted %s", arg);
}

void cmd_stor(int sock, char* arg) {
  if (logged_in == 0) {
    sendstrf(sock, "530 Not logged in.\r\n");
    return;
  }
  if (fs_count >= 8) {
    sendstrf(sock, "452 Insufficient storage space.\r\n");
    return;
  }
  sendstrf(sock, "150 Opening data connection for %s.\r\n", arg);
  fs_add(arg, 77);
  sendstrf(sock, "226 Transfer complete.\r\n");
  syslog(6, "stored %s (%d bytes)", arg, 77);
}

void dispatch(int sock, char* cmd, char* arg) {
  int hit;
  hit = cstreq(cmd, "USER");
  if (hit == 1) {
    cmd_user(sock, arg);
    return;
  }
  hit = cstreq(cmd, "PASS");
  if (hit == 1) {
    cmd_pass(sock, arg);
    return;
  }
  hit = cstreq(cmd, "SYST");
  if (hit == 1) {
    cmd_syst(sock);
    return;
  }
  hit = cstreq(cmd, "PWD");
  if (hit == 1) {
    cmd_pwd(sock);
    return;
  }
  hit = cstreq(cmd, "TYPE");
  if (hit == 1) {
    cmd_type(sock, arg);
    return;
  }
  hit = cstreq(cmd, "LIST");
  if (hit == 1) {
    cmd_list(sock);
    return;
  }
  hit = cstreq(cmd, "RETR");
  if (hit == 1) {
    cmd_retr(sock, arg);
    return;
  }
  hit = cstreq(cmd, "HELP");
  if (hit == 1) {
    cmd_help(sock);
    return;
  }
  hit = cstreq(cmd, "NOOP");
  if (hit == 1) {
    cmd_noop(sock);
    return;
  }
  hit = cstreq(cmd, "QUIT");
  if (hit == 1) {
    cmd_quit(sock);
    return;
  }
  hit = cstreq(cmd, "FEAT");
  if (hit == 1) {
    cmd_feat(sock);
    return;
  }
  hit = cstreq(cmd, "PASV");
  if (hit == 1) {
    cmd_pasv(sock);
    return;
  }
  hit = cstreq(cmd, "SIZE");
  if (hit == 1) {
    cmd_size(sock, arg);
    return;
  }
  hit = cstreq(cmd, "MDTM");
  if (hit == 1) {
    cmd_mdtm(sock, arg);
    return;
  }
  hit = cstreq(cmd, "CWD");
  if (hit == 1) {
    cmd_cwd(sock, arg);
    return;
  }
  hit = cstreq(cmd, "CDUP");
  if (hit == 1) {
    cmd_cdup(sock);
    return;
  }
  hit = cstreq(cmd, "MKD");
  if (hit == 1) {
    cmd_mkd(sock, arg);
    return;
  }
  hit = cstreq(cmd, "DELE");
  if (hit == 1) {
    cmd_dele(sock, arg);
    return;
  }
  hit = cstreq(cmd, "STOR");
  if (hit == 1) {
    cmd_stor(sock, arg);
    return;
  }
  sendstrf(sock, "500 '%s': command not understood.\r\n", cmd);
}

int main() {
  setup_fs();
  setup_session();
  int sock = 1;
  syslog(6, "bftpd starting on port %d", 21);
  sendstrf(sock, "220 bftpd 1.0.11 ready.\r\n");
  for (int i = 0; i < script_len; i++) {
    char* cmd = script_cmds[i];
    char* arg = script_args[i];
    dispatch(sock, cmd, arg);
  }
  syslog(6, "session finished after %d commands", script_len);
  return 0;
}
`

// Package checker implements the paper's extensible typechecker (section 3):
// qualifier checking of cminor programs directed by user-defined type rules.
// It consumes the base type information from cminor.TypeCheck and the
// qualifier registry from qdl, enforces case/restrict/assign/disallow rules,
// applies the implicit subtyping of value qualifiers (tau q <= tau), strips
// reference qualifiers from r-types, and collects the value-qualified casts
// that the instrumenter turns into run-time checks.
package checker

import (
	"repro/internal/cminor"
	"repro/internal/qdl"
)

// bindings is the result of matching a clause pattern: pattern variables
// bound to program fragments, and type variables bound to cminor types.
// Clauses bind at most a handful of variables, so the bindings are small
// inline key/value lists (spilling to the heap past the inline capacity)
// with linear-scan lookups — far cheaper than the three maps this used to
// allocate per match attempt.
type bindings struct {
	exprs    []exprBind
	lvs      []lvBind
	types    []typeBind
	exprsBuf [3]exprBind
	lvsBuf   [2]lvBind
	typesBuf [2]typeBind
}

type exprBind struct {
	name string
	e    cminor.Expr
}

type lvBind struct {
	name string
	lv   cminor.LValue
}

type typeBind struct {
	name string
	t    cminor.Type
}

// newBindings returns an empty binding set.
func newBindings() *bindings { return &bindings{} }

func (b *bindings) setExpr(name string, e cminor.Expr) {
	for i := range b.exprs {
		if b.exprs[i].name == name {
			b.exprs[i].e = e
			return
		}
	}
	if b.exprs == nil {
		b.exprs = b.exprsBuf[:0]
	}
	b.exprs = append(b.exprs, exprBind{name, e})
}

func (b *bindings) getExpr(name string) (cminor.Expr, bool) {
	for i := range b.exprs {
		if b.exprs[i].name == name {
			return b.exprs[i].e, true
		}
	}
	return nil, false
}

func (b *bindings) setLV(name string, lv cminor.LValue) {
	for i := range b.lvs {
		if b.lvs[i].name == name {
			b.lvs[i].lv = lv
			return
		}
	}
	if b.lvs == nil {
		b.lvs = b.lvsBuf[:0]
	}
	b.lvs = append(b.lvs, lvBind{name, lv})
}

func (b *bindings) setType(name string, t cminor.Type) {
	for i := range b.types {
		if b.types[i].name == name {
			b.types[i].t = t
			return
		}
	}
	if b.types == nil {
		b.types = b.typesBuf[:0]
	}
	b.types = append(b.types, typeBind{name, t})
}

func (b *bindings) getType(name string) (cminor.Type, bool) {
	for i := range b.types {
		if b.types[i].name == name {
			return b.types[i].t, true
		}
	}
	return nil, false
}

// matchTypePat unifies a type pattern with a cminor type, binding type
// variables in b.types. Qualifiers are stripped at every level for matching.
func (en *engine) matchTypePat(tp qdl.TypePat, t cminor.Type, b *bindings) bool {
	cur := cminor.Decay(cminor.StripQuals(t))
	for i := 0; i < tp.Ptr; i++ {
		pt, ok := cur.(cminor.PointerType)
		if !ok {
			return false
		}
		cur = cminor.Decay(cminor.StripQuals(pt.Elem))
	}
	if tp.Var != "" {
		if prev, ok := b.getType(tp.Var); ok {
			return cminor.BaseTypeEqual(prev, cur)
		}
		b.setType(tp.Var, cur)
		return true
	}
	return cminor.BaseTypeEqual(tp.Base, cur)
}

// declOf resolves a pattern variable to its declaration (clause decls, then
// the qualifier's subject).
func declOf(d *qdl.Def, cl qdl.Clause, name string) (qdl.VarPat, bool) {
	for _, vp := range cl.Decls {
		if vp.Name == name {
			return vp, true
		}
	}
	if d.Subject.Name == name {
		return d.Subject, true
	}
	return qdl.VarPat{}, false
}

// bindExpr checks classifier and type-pattern constraints for binding
// pattern variable vp to expression e, recording the binding.
func (en *engine) bindExpr(vp qdl.VarPat, e cminor.Expr, b *bindings) bool {
	switch vp.Classifier {
	case qdl.ClassConst:
		switch e.(type) {
		case *cminor.IntLit, *cminor.StrLit, *cminor.NullLit:
		default:
			return false
		}
	case qdl.ClassLValue:
		lve, ok := e.(*cminor.LVExpr)
		if !ok {
			return false
		}
		if !en.matchTypePat(vp.Type, en.info.LVTypeOf(lve.LV), b) {
			return false
		}
		b.setLV(vp.Name, lve.LV)
		b.setExpr(vp.Name, e)
		return true
	case qdl.ClassVar:
		lve, ok := e.(*cminor.LVExpr)
		if !ok {
			return false
		}
		if _, isVar := lve.LV.(*cminor.VarLV); !isVar {
			return false
		}
		if !en.matchTypePat(vp.Type, en.info.LVTypeOf(lve.LV), b) {
			return false
		}
		b.setLV(vp.Name, lve.LV)
		b.setExpr(vp.Name, e)
		return true
	}
	if !en.matchTypePat(vp.Type, en.info.TypeOf(e), b) {
		return false
	}
	b.setExpr(vp.Name, e)
	return true
}

// bindLValue binds a pattern variable to an l-value (for &L patterns).
func (en *engine) bindLValue(vp qdl.VarPat, lv cminor.LValue, b *bindings) bool {
	if vp.Classifier == qdl.ClassVar {
		if _, isVar := lv.(*cminor.VarLV); !isVar {
			return false
		}
	}
	if vp.Classifier == qdl.ClassConst {
		return false
	}
	if !en.matchTypePat(vp.Type, en.info.LVTypeOf(lv), b) {
		return false
	}
	b.setLV(vp.Name, lv)
	return true
}

var binopByPatOp = map[qdl.PatOp]cminor.BinopKind{
	"+": cminor.BAdd, "-": cminor.BSub, "*": cminor.BMul,
	"/": cminor.BDiv, "%": cminor.BMod,
	"==": cminor.BEq, "!=": cminor.BNe,
	"<": cminor.BLt, "<=": cminor.BLe, ">": cminor.BGt, ">=": cminor.BGe,
	"&&": cminor.BAnd, "||": cminor.BOr,
}

// matchPattern matches a clause pattern against an expression, extending b.
func (en *engine) matchPattern(d *qdl.Def, cl qdl.Clause, pat qdl.Pattern, e cminor.Expr, b *bindings) bool {
	switch pat := pat.(type) {
	case qdl.PVar:
		vp, ok := declOf(d, cl, pat.Name)
		if !ok {
			return false
		}
		return en.bindExpr(vp, e, b)
	case qdl.PDeref:
		lve, ok := e.(*cminor.LVExpr)
		if !ok {
			return false
		}
		dlv, ok := lve.LV.(*cminor.DerefLV)
		if !ok {
			return false
		}
		vp, ok := declOf(d, cl, pat.Name)
		if !ok {
			return false
		}
		return en.bindExpr(vp, dlv.Addr, b)
	case qdl.PAddrOf:
		ao, ok := e.(*cminor.AddrOf)
		if !ok {
			return false
		}
		vp, ok := declOf(d, cl, pat.Name)
		if !ok {
			return false
		}
		return en.bindLValue(vp, ao.LV, b)
	case qdl.PNew:
		switch e := e.(type) {
		case *cminor.NewExpr:
			return true
		case *cminor.Cast:
			// "The cast to int* is ignored for the purposes of pattern
			// matching" (section 2.2.1).
			_, ok := e.X.(*cminor.NewExpr)
			return ok
		}
		return false
	case qdl.PNull:
		return isNullRHS(e)
	case qdl.PFresh:
		// fresh matches call results only, which are handled at the
		// instruction level (checkCallResult); no expression matches.
		return false
	case qdl.PUnop:
		un, ok := e.(*cminor.Unop)
		if !ok {
			return false
		}
		if (pat.Op == "-" && un.Op != cminor.UNeg) || (pat.Op == "!" && un.Op != cminor.UNot) {
			return false
		}
		vp, ok := declOf(d, cl, pat.Name)
		if !ok {
			return false
		}
		return en.bindExpr(vp, un.X, b)
	case qdl.PBinop:
		bin, ok := e.(*cminor.Binop)
		if !ok {
			return false
		}
		want, ok := binopByPatOp[pat.Op]
		if !ok || bin.Op != want {
			return false
		}
		lvp, ok := declOf(d, cl, pat.L)
		if !ok {
			return false
		}
		rvp, ok := declOf(d, cl, pat.R)
		if !ok {
			return false
		}
		return en.bindExpr(lvp, bin.L, b) && en.bindExpr(rvp, bin.R, b)
	}
	return false
}

func isNullRHS(e cminor.Expr) bool {
	switch e := e.(type) {
	case *cminor.NullLit:
		return true
	case *cminor.IntLit:
		return e.Value == 0
	case *cminor.Cast:
		return isNullRHS(e.X)
	}
	return false
}

// evalWhere evaluates a clause's where-predicate under bindings. subject is
// the expression the whole clause was matched against; cur is its
// in-progress qualifier set, consulted for self-referential checks (e.g.
// nonzero's "E1, where pos(E1)" where E1 is the subject itself).
func (en *engine) evalWhere(p qdl.Pred, b *bindings, subject cminor.Expr, cur map[string]bool) bool {
	switch p := p.(type) {
	case qdl.PQual:
		sub, ok := b.getExpr(p.Arg)
		if !ok {
			return false
		}
		if sub == subject {
			return cur[p.Qual]
		}
		return en.qualSet(sub)[p.Qual]
	case qdl.PCmp:
		// NULL comparisons over constants test pointer-ness of the bound
		// literal (string literals and non-zero constants are not NULL).
		if isNullTerm(p.L) || isNullTerm(p.R) {
			ln, lok := en.nullness(p.L, b)
			rn, rok := en.nullness(p.R, b)
			if !lok || !rok {
				return false
			}
			switch p.Op {
			case "==":
				return ln == rn
			case "!=":
				return ln != rn
			}
			return false
		}
		lv, lok := en.evalConstTerm(p.L, b)
		rv, rok := en.evalConstTerm(p.R, b)
		if !lok || !rok {
			return false
		}
		switch p.Op {
		case "==":
			return lv == rv
		case "!=":
			return lv != rv
		case "<":
			return lv < rv
		case "<=":
			return lv <= rv
		case ">":
			return lv > rv
		case ">=":
			return lv >= rv
		}
		return false
	case qdl.PAnd:
		return en.evalWhere(p.L, b, subject, cur) && en.evalWhere(p.R, b, subject, cur)
	case qdl.POr:
		return en.evalWhere(p.L, b, subject, cur) || en.evalWhere(p.R, b, subject, cur)
	case qdl.PNot:
		return !en.evalWhere(p.P, b, subject, cur)
	}
	return false
}

func isNullTerm(t qdl.Term) bool {
	_, ok := t.(qdl.TNull)
	return ok
}

// nullness evaluates whether a constant term denotes the NULL pointer.
func (en *engine) nullness(t qdl.Term, b *bindings) (bool, bool) {
	switch t := t.(type) {
	case qdl.TNull:
		return true, true
	case qdl.TVar:
		e, ok := b.getExpr(t.Name)
		if !ok {
			return false, false
		}
		switch e := e.(type) {
		case *cminor.NullLit:
			return true, true
		case *cminor.StrLit:
			return false, true
		case *cminor.IntLit:
			return e.Value == 0, true
		}
		return false, false
	}
	return false, false
}

// evalConstTerm evaluates a term over Const-classified bindings.
func (en *engine) evalConstTerm(t qdl.Term, b *bindings) (int64, bool) {
	switch t := t.(type) {
	case qdl.TInt:
		return t.Value, true
	case qdl.TVar:
		e, ok := b.getExpr(t.Name)
		if !ok {
			return 0, false
		}
		lit, ok := e.(*cminor.IntLit)
		if !ok {
			return 0, false
		}
		return lit.Value, true
	case qdl.TArith:
		l, lok := en.evalConstTerm(t.L, b)
		r, rok := en.evalConstTerm(t.R, b)
		if !lok || !rok {
			return 0, false
		}
		switch t.Op {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		case "/":
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case "%":
			if r == 0 {
				return 0, false
			}
			return l % r, true
		}
	}
	return 0, false
}

// qualSet computes the set of value qualifiers derivable for expression e:
// its statically declared qualifiers closed under the case rules of every
// value qualifier, iterated to fixpoint (definitions may be mutually
// recursive, section 2.1.1). Results are memoized per AST node.
func (en *engine) qualSet(e cminor.Expr) map[string]bool {
	if s, ok := en.memo[e]; ok {
		en.stats.MemoHits++
		return s
	}
	en.stats.MemoMisses++
	set := en.staticQuals(e)
	en.memo[e] = set // registered before iterating so cycles see the growing set
	// Logical memory model (section 3.3): p+i has p's type, qualifiers
	// included, so array indexing does not produce spurious errors.
	if b, ok := e.(*cminor.Binop); ok && (b.Op == cminor.BAdd || b.Op == cminor.BSub) {
		var ptr cminor.Expr
		if cminor.IsPointer(en.info.TypeOf(b.L)) {
			ptr = b.L
		} else if b.Op == cminor.BAdd && cminor.IsPointer(en.info.TypeOf(b.R)) {
			ptr = b.R
		}
		if ptr != nil {
			for q := range en.qualSet(ptr) {
				set[q] = true
			}
		}
	}
	if !en.deriveReady {
		en.prepareDerive()
	}
	for round := 0; ; round++ {
		changed := false
		for i, d := range en.valueDefs {
			if set[d.Name] {
				continue
			}
			// A definition whose where-clauses never consult qualifier sets
			// matches deterministically: its round-0 failure cannot turn into
			// a success, so later rounds skip it.
			if round > 0 && !en.defCurDep[i] {
				continue
			}
			if en.matchesAnyCase(d, e, set) {
				set[d.Name] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return set
}

// prepareDerive precomputes the case-bearing value-qualifier definitions and,
// for each, whether any case's where-clause consults qualifier sets (directly
// on the subject or via another expression's derivation). Pattern and type
// matching depend only on the fixed AST, so a definition without such a
// clause is evaluated once per expression instead of once per fixpoint round.
func (en *engine) prepareDerive() {
	defs := en.reg.Defs()
	en.valueDefs = make([]*qdl.Def, 0, len(defs))
	en.defCurDep = make([]bool, 0, len(defs))
	for _, d := range defs {
		if d.Kind != qdl.ValueQualifier || len(d.Cases) == 0 {
			continue
		}
		dep := false
		for _, cl := range d.Cases {
			if cl.Where != nil && predConsultsQuals(cl.Where) {
				dep = true
				break
			}
		}
		en.valueDefs = append(en.valueDefs, d)
		en.defCurDep = append(en.defCurDep, dep)
	}
	en.deriveReady = true
}

// predConsultsQuals reports whether p contains a qualifier check.
func predConsultsQuals(p qdl.Pred) bool {
	switch p := p.(type) {
	case qdl.PQual:
		return true
	case qdl.PAnd:
		return predConsultsQuals(p.L) || predConsultsQuals(p.R)
	case qdl.POr:
		return predConsultsQuals(p.L) || predConsultsQuals(p.R)
	case qdl.PImp:
		return predConsultsQuals(p.L) || predConsultsQuals(p.R)
	case qdl.PNot:
		return predConsultsQuals(p.P)
	case qdl.PForall:
		return predConsultsQuals(p.Body)
	}
	return false
}

// matchesAnyCase reports whether any case clause of d gives e the qualifier.
func (en *engine) matchesAnyCase(d *qdl.Def, e cminor.Expr, cur map[string]bool) bool {
	// The subject's type pattern must match e's type; it is the same check
	// for every case, so one failed probe rejects the whole definition.
	et := en.info.TypeOf(e)
	var probe bindings
	if !en.matchTypePat(d.Subject.Type, et, &probe) {
		return false
	}
	for _, cl := range d.Cases {
		var b bindings
		en.matchTypePat(d.Subject.Type, et, &b)
		if !en.matchPattern(d, cl, cl.Pat, e, &b) {
			continue
		}
		if cl.Where != nil && !en.evalWhere(cl.Where, &b, e, cur) {
			continue
		}
		return true
	}
	return false
}

// staticQuals returns the value qualifiers e carries by declaration: the
// r-type of an l-value keeps its value qualifiers (reference qualifiers are
// stripped, section 2.2.1), and a cast asserts its target's qualifiers.
func (en *engine) staticQuals(e cminor.Expr) map[string]bool {
	set := map[string]bool{}
	var from cminor.Type
	switch e := e.(type) {
	case *cminor.LVExpr:
		from = en.info.LVTypeOf(e.LV)
		// Flow-sensitivity (section 8 extension): the current branch's
		// condition may have refined this variable.
		if en.flow {
			if v, ok := e.LV.(*cminor.VarLV); ok {
				for q := range en.env[v.Name] {
					set[q] = true
				}
			}
		}
	case *cminor.Cast:
		from = e.Type
	default:
		return set
	}
	for _, q := range cminor.QualsOf(from) {
		if d := en.reg.Lookup(q); d != nil && d.Kind == qdl.ValueQualifier {
			set[q] = true
		}
	}
	return set
}

// valueQualsOf filters a type's top-level qualifiers to value qualifiers.
func (en *engine) valueQualsOf(t cminor.Type) []string {
	var out []string
	for _, q := range cminor.QualsOf(t) {
		if d := en.reg.Lookup(q); d != nil && d.Kind == qdl.ValueQualifier {
			out = append(out, q)
		}
	}
	return out
}

// refQualsOf filters a type's top-level qualifiers to reference qualifiers.
func (en *engine) refQualsOf(t cminor.Type) []string {
	var out []string
	for _, q := range cminor.QualsOf(t) {
		if d := en.reg.Lookup(q); d != nil && d.Kind == qdl.RefQualifier {
			out = append(out, q)
		}
	}
	return out
}

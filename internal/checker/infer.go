package checker

import (
	"fmt"
	"sort"

	"repro/internal/cminor"
	"repro/internal/qdl"
)

// This file implements qualifier inference, the first extension the paper's
// section 8 calls for ("support for qualifier inference to decrease the
// annotation burden"). Inference computes a greatest fixpoint: every
// variable and parameter that COULD carry a value qualifier is assumed to,
// and assumptions are retracted whenever some assignment's right-hand side
// cannot be given the qualifier under the remaining assumptions. What
// survives is a consistent annotation set, which Infer applies to the
// program's declared types.
//
// Inference is whole-program (closed world): parameters are constrained by
// the call sites present in the program. It inherits the checker's
// deliberate unsoundnesses (section 3.3), most notably that variables used
// before initialization are unconstrained; address-taken variables are
// excluded because writes through pointers are not tracked.

// InferredAnnotation is one qualifier inference result.
type InferredAnnotation struct {
	Pos   cminor.Pos
	Var   string
	Where string // "global", "local", or "parameter of <fn>"
	Qual  string
}

func (a InferredAnnotation) String() string {
	return fmt.Sprintf("%s: %s %s may be annotated %s", a.Pos, a.Where, a.Var, a.Qual)
}

// inferCandidate is a declaration site whose type may gain a qualifier.
type inferCandidate struct {
	key     string // position key, matching VarDef.Pos
	name    string
	where   string
	pos     cminor.Pos
	orig    cminor.Type // declared type before inference
	getType func() cminor.Type
	setType func(cminor.Type)
	assumed map[string]bool
}

func posKey(p cminor.Pos) string { return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col) }

// Infer computes and APPLIES the maximal consistent set of value-qualifier
// annotations for the given qualifier names, returning what was added. The
// program's declared types are mutated; re-run Check afterwards to validate
// (inference never introduces new warnings on a program that previously
// checked).
func Infer(prog *cminor.Program, reg *qdl.Registry, qualNames []string) ([]InferredAnnotation, error) {
	var defs []*qdl.Def
	for _, q := range qualNames {
		d := reg.Lookup(q)
		if d == nil {
			return nil, fmt.Errorf("checker: cannot infer unknown qualifier %s", q)
		}
		if d.Kind != qdl.ValueQualifier {
			return nil, fmt.Errorf("checker: only value qualifiers can be inferred (%s is a reference qualifier)", q)
		}
		defs = append(defs, d)
	}

	// Collect candidate declaration sites.
	var candidates []*inferCandidate
	byKey := map[string]*inferCandidate{}
	addCandidate := func(pos cminor.Pos, name, where string, get func() cminor.Type, set func(cminor.Type)) {
		c := &inferCandidate{
			key: posKey(pos), name: name, where: where, pos: pos,
			orig: get(), getType: get, setType: set, assumed: map[string]bool{},
		}
		candidates = append(candidates, c)
		byKey[c.key] = c
	}
	for _, g := range prog.Globals {
		g := g
		addCandidate(g.Pos, g.Name, "global", func() cminor.Type { return g.Type }, func(t cminor.Type) { g.Type = t })
	}
	for _, f := range prog.Funcs {
		f := f
		for i := range f.Params {
			p := &f.Params[i]
			addCandidate(p.Pos, p.Name, "parameter of "+f.Name,
				func() cminor.Type { return p.Type }, func(t cminor.Type) { p.Type = t })
		}
		if f.Body != nil {
			cminor.WalkStmt(f.Body, cminor.Visitor{Decl: func(d *cminor.VarDecl) {
				addCandidate(d.Pos, d.Name, "local", func() cminor.Type { return d.Type }, func(t cminor.Type) { d.Type = t })
			}})
		}
	}

	// Seed assumptions: the qualifier's subject type pattern must match the
	// declared type, and the site must not already carry the qualifier.
	en0 := &engine{reg: reg, memo: map[cminor.Expr]map[string]bool{}}
	for _, c := range candidates {
		for _, d := range defs {
			t := c.getType()
			if cminor.HasQual(t, d.Name) {
				continue
			}
			b := newBindings()
			if !en0.matchTypePat(d.Subject.Type, t, b) {
				continue
			}
			c.assumed[d.Name] = true
		}
	}

	// Exclude parameters of functions with no call site in the program:
	// they are entry points callable with arbitrary values, so the closed
	// world does not cover them.
	{
		called := map[string]bool{}
		cminor.Walk(prog, cminor.Visitor{Instr: func(in cminor.Instr) {
			if c, ok := in.(*cminor.CallInstr); ok {
				called[c.Fn] = true
			}
		}})
		for _, f := range prog.Funcs {
			if called[f.Name] {
				continue
			}
			for i := range f.Params {
				if c := byKey[posKey(f.Params[i].Pos)]; c != nil {
					c.assumed = map[string]bool{}
				}
			}
		}
	}

	// Exclude address-taken variables: writes through pointers are not
	// tracked, so assumptions about their contents would be unsound.
	{
		info, _ := cminor.TypeCheck(prog)
		cminor.Walk(prog, cminor.Visitor{Expr: func(e cminor.Expr) {
			ao, ok := e.(*cminor.AddrOf)
			if !ok {
				return
			}
			if v, isVar := ao.LV.(*cminor.VarLV); isVar {
				if def := info.VarDefs[v]; def != nil {
					if c := byKey[posKey(def.Pos)]; c != nil {
						c.assumed = map[string]bool{}
					}
				}
			}
		}})
	}

	apply := func() {
		for _, c := range candidates {
			// Rebuild from the original declared type plus the surviving
			// assumptions, so user-written annotations are never touched.
			var add []string
			for q := range c.assumed {
				add = append(add, q)
			}
			sort.Strings(add)
			c.setType(cminor.Qualify(c.orig, add...))
		}
	}

	// Greatest fixpoint: apply assumptions, re-derive, retract whatever an
	// assignment cannot justify.
	for round := 0; round < len(candidates)*len(defs)+2; round++ {
		apply()
		info, _ := cminor.TypeCheck(prog)
		en := &engine{reg: reg, info: info, prog: prog, memo: map[cminor.Expr]map[string]bool{}}
		changed := false
		retract := func(def *cminor.VarDef, rhsQuals map[string]bool, resultQuals map[string]bool) {
			if def == nil {
				return
			}
			c := byKey[posKey(def.Pos)]
			if c == nil {
				return
			}
			for q := range c.assumed {
				ok := false
				if rhsQuals != nil {
					ok = rhsQuals[q]
				} else if resultQuals != nil {
					ok = resultQuals[q]
				}
				if !ok {
					delete(c.assumed, q)
					changed = true
				}
			}
		}
		defOfLV := func(lv cminor.LValue) *cminor.VarDef {
			v, ok := lv.(*cminor.VarLV)
			if !ok {
				return nil
			}
			return info.VarDefs[v]
		}
		resultQualSet := func(t cminor.Type) map[string]bool {
			out := map[string]bool{}
			for _, q := range en.valueQualsOf(t) {
				out[q] = true
			}
			return out
		}
		handleInstr := func(in cminor.Instr) {
			switch in := in.(type) {
			case *cminor.Assign:
				retract(defOfLV(in.LHS), en.qualSet(in.RHS), nil)
			case *cminor.CallInstr:
				fn, ok := info.Funcs[in.Fn]
				if !ok {
					return
				}
				for i, a := range in.Args {
					if i >= len(fn.Params) {
						break
					}
					if c := byKey[posKey(fn.Params[i].Pos)]; c != nil {
						for q := range c.assumed {
							if !en.qualSet(a)[q] {
								delete(c.assumed, q)
								changed = true
							}
						}
					}
				}
				if in.LHS != nil {
					retract(defOfLV(in.LHS), nil, resultQualSet(fn.Signature().Result))
				}
			}
		}
		// Declaration initializers and instructions are the assignment
		// sinks; a declaration WITHOUT an initializer leaves its candidate
		// unconstrained (the section 3.3 use-before-init unsoundness, which
		// the paper's checker shares).
		cminor.Walk(prog, cminor.Visitor{
			Instr: handleInstr,
			Decl: func(d *cminor.VarDecl) {
				if d.Init == nil {
					return
				}
				if c := byKey[posKey(d.Pos)]; c != nil {
					for q := range c.assumed {
						if !en.qualSet(d.Init)[q] {
							delete(c.assumed, q)
							changed = true
						}
					}
				}
			},
		})
		if !changed {
			break
		}
	}
	apply()

	var out []InferredAnnotation
	for _, c := range candidates {
		qs := make([]string, 0, len(c.assumed))
		for q := range c.assumed {
			qs = append(qs, q)
		}
		sort.Strings(qs)
		for _, q := range qs {
			out = append(out, InferredAnnotation{Pos: c.pos, Var: c.name, Where: c.where, Qual: q})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Qual < out[j].Qual
	})
	return out, nil
}

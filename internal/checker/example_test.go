package checker_test

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/cminor"
	"repro/internal/quals"
)

// ExampleCheck typechecks figure 2's lcm against the standard qualifier
// library: the cast the programmer wrote is the only concession the
// flow-insensitive type system needs.
func ExampleCheck() {
	reg := quals.MustStandard()
	src := `
int pos gcd(int pos n, int pos m);
int pos lcm(int pos a, int pos b) {
  int pos d;
  d = gcd(a, b);
  int pos prod = a * b;
  return (int pos) (prod / d);
}
`
	prog, err := cminor.Parse("lcm.c", src, reg.Names())
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	res := checker.Check(prog, reg)
	fmt.Println("warnings:", len(res.Diags))
	fmt.Println("instrumented casts:", len(res.Casts))
	// Output:
	// warnings: 0
	// instrumented casts: 1
}

// ExampleCheckWith demonstrates the flow-sensitivity extension: the NULL
// test makes the dereference safe without a cast.
func ExampleCheckWith() {
	reg := quals.MustStandard()
	src := `
int f(int* p) {
  if (p == NULL) {
    return 0;
  }
  return *p;
}
`
	prog, err := cminor.Parse("guarded.c", src, reg.Names())
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	insensitive := checker.CheckWith(prog, reg, checker.Options{FlowSensitive: false})
	prog2, _ := cminor.Parse("guarded.c", src, reg.Names())
	sensitive := checker.CheckWith(prog2, reg, checker.Options{FlowSensitive: true})
	fmt.Println("flow-insensitive warnings:", len(insensitive.Diags))
	fmt.Println("flow-sensitive warnings:", len(sensitive.Diags))
	// Output:
	// flow-insensitive warnings: 1
	// flow-sensitive warnings: 0
}

// ExampleInfer shows the qualifier-inference extension recovering the
// annotations an unannotated program needs.
func ExampleInfer() {
	reg := quals.MustStandard()
	src := `
int pos double_it(int pos v);
void f() {
  int w = 21;
  int r;
  r = double_it(w);
}
`
	prog, err := cminor.Parse("f.c", src, reg.Names())
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	inferred, err := checker.Infer(prog, reg, []string{"pos"})
	if err != nil {
		fmt.Println("infer:", err)
		return
	}
	for _, a := range inferred {
		fmt.Printf("%s %s: %s\n", a.Where, a.Var, a.Qual)
	}
	fmt.Println("warnings after:", len(checker.Check(prog, reg).Diags))
	// Output:
	// local w: pos
	// local r: pos
	// warnings after: 0
}

package checker

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cachedisk"
	"repro/internal/cminor"
	"repro/internal/faults"
	"repro/internal/qdl"
)

// This file implements content-addressed, function-granular result caching:
// the unit of reuse for a long-lived checking service is one function body,
// so that editing a file re-checks only the functions whose text changed.
//
// A cached entry is keyed by two hashes:
//
//   - the function fingerprint: the position-free rendering of the function
//     (cminor.FuncString), so a body that merely moved within the file still
//     hits;
//   - the context key: everything outside the body the walk can observe —
//     the qualifier registry fingerprint, the checker options that change
//     verdicts (flow sensitivity), the program interface (struct layouts,
//     global declarations, every function signature), the address-taken
//     variable set consulted by flow refinement, and the returns-fresh facts
//     (the one piece of cross-function body information the checker uses,
//     via the section 2.2.1 fresh-assignment extension).
//
// Diagnostics are stored with line numbers relative to the function's own
// first line and rebased on replay, so an unchanged function shifted by an
// edit above it replays its warnings at the new positions.

// DefaultFuncCacheCapacity bounds a cache created with capacity <= 0.
const DefaultFuncCacheCapacity = 8192

// FuncCacheStats is a snapshot of a function cache's counters.
type FuncCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Rejected counts entries dropped at lookup because their content seal no
	// longer matched (the function is re-walked and the entry re-stored) —
	// whether the entry came from memory or from a disk record whose payload
	// failed to decode or re-seal.
	Rejected uint64 `json:"rejected"`
	// Coalesced counts lookups that joined another caller's in-progress walk
	// of the same key and shared its result (singleflight): of N concurrent
	// identical submissions, one is a Miss (the fill) and N-1 are Coalesced.
	Coalesced uint64 `json:"coalesced"`
	// DiskHits counts leader fills served from the disk tier; PeerHits
	// counts fills served (and seal-verified) from a cache peer; PeerRejects
	// counts peer records refused by verification. All stay zero unless the
	// corresponding tier is attached (persist.go).
	DiskHits    uint64 `json:"disk_hits"`
	PeerHits    uint64 `json:"peer_hits"`
	PeerRejects uint64 `json:"peer_rejects"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s FuncCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// FuncCache is a thread-safe LRU cache of per-function checking results.
// Share one across CheckWithCache calls (and across programs — the context
// key isolates unrelated programs and registries) to make repeated checks of
// mostly-unchanged sources cheap. Concurrent lookups of one uncached key
// coalesce: the first caller walks while the rest wait for its result.
type FuncCache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // of *funcCacheEntry; front is most recently used
	entries  map[string]*list.Element
	flights  map[string]*flight

	// Counters are atomics, not fields mutated under mu: the coalescing path
	// bumps Coalesced outside the map lock, and concurrent tree checking
	// hammers all of them from every worker — read-modify-write under a
	// sometimes-different lock would undercount.
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	rejected  atomic.Uint64
	coalesced atomic.Uint64

	diskHits    atomic.Uint64
	peerHits    atomic.Uint64
	peerRejects atomic.Uint64

	// Optional external tiers, attached before concurrent use and immutable
	// after (WithDisk / WithPeerFetch in persist.go).
	disk      *cachedisk.Store
	peerFetch PeerFetch
}

// flight is one in-progress fill: the leader walks the function while waiters
// block on done and share the entry. entry is written before done closes
// (and only then read), so the channel close publishes it; nil means the walk
// produced a result that was not safely replayable, and waiters walk
// themselves.
type flight struct {
	done  chan struct{}
	entry *funcCacheEntry
}

// funcCacheEntry is the replayable outcome of walking one function body.
type funcCacheEntry struct {
	key   string
	diags []relDiag
	// The statistic deltas a body walk contributes (the program-level
	// counters — dereferences, annotations, ref uses — are recomputed by the
	// surrounding CheckWithCache pass and never cached).
	restrictChecks   int
	restrictFailures int
	memoHits         int
	memoMisses       int
	// seal is a content checksum over the replayable payload above,
	// computed at put and re-verified at get: a corrupted entry (bit rot, a
	// bad peer in a future distributed cache) is rejected and re-walked
	// instead of replayed — the same integrity discipline as the prover's
	// certificate replay-on-fetch, scaled to the checker's cheaper unit.
	seal uint64
}

// sealEntry checksums an entry's replayable payload (diagnostics and
// statistic deltas; the key is excluded — it addresses, the seal attests).
func sealEntry(e *funcCacheEntry) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d\x00", e.restrictChecks, e.restrictFailures, e.memoHits, e.memoMisses)
	for _, d := range e.diags {
		fmt.Fprintf(h, "%d|%d|%s|%s\x00", d.relLine, d.col, d.code, d.msg)
	}
	return h.Sum64()
}

// relDiag is a diagnostic with its line stored relative to the function's
// first line.
type relDiag struct {
	relLine int
	col     int
	code    string
	msg     string
}

// NewFuncCache returns an empty cache holding at most capacity function
// results (DefaultFuncCacheCapacity when capacity <= 0).
func NewFuncCache(capacity int) *FuncCache {
	if capacity <= 0 {
		capacity = DefaultFuncCacheCapacity
	}
	return &FuncCache{
		capacity: capacity,
		lru:      list.New(),
		entries:  map[string]*list.Element{},
		flights:  map[string]*flight{},
	}
}

// Stats returns a snapshot of the hit/miss/eviction counters.
func (c *FuncCache) Stats() FuncCacheStats {
	return FuncCacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		Rejected:    c.rejected.Load(),
		Coalesced:   c.coalesced.Load(),
		DiskHits:    c.diskHits.Load(),
		PeerHits:    c.peerHits.Load(),
		PeerRejects: c.peerRejects.Load(),
	}
}

// Len returns the number of cached function results.
func (c *FuncCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// fpCacheReplay injects faults into the cache-replay path (see
// checkFuncCached); any fired fault is treated as a miss.
var fpCacheReplay = faults.Register("checker.cache.replay")

// ForEach calls fn with every cached entry's diagnostic codes, under the
// cache lock, without touching recency or the counters. Chaos tests use it to
// assert that no transient ("internal") result was ever stored.
func (c *FuncCache) ForEach(fn func(key string, diagCodes []string)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*funcCacheEntry)
		codes := make([]string, len(e.diags))
		for i, d := range e.diags {
			codes[i] = d.code
		}
		fn(e.key, codes)
	}
}

// beginLookup is the coalescing cache probe. Exactly one of three outcomes:
//
//   - hit: entry != nil — replay it (fl is nil);
//   - leader: entry == nil, leader == true — the caller owns the fill: walk
//     the function, then call endFlight with the outcome (mandatory, even on
//     failure, or waiters hang);
//   - waiter: entry == nil, leader == false — another caller is already
//     walking this key; wait on fl.done and share fl.entry.
//
// A sealed-but-corrupted entry is dropped (Rejected) and the probe falls
// through to the flight map, so the re-walk is coalesced too.
func (c *FuncCache) beginLookup(key string) (entry *funcCacheEntry, fl *flight, leader bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*funcCacheEntry)
		if sealEntry(e) == e.seal {
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			c.hits.Add(1)
			return e, nil, false
		}
		// Content seal mismatch: drop the corrupted entry so the function is
		// re-walked and the entry re-stored.
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.rejected.Add(1)
	}
	if fl, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		return nil, fl, false
	}
	fl = &flight{done: make(chan struct{})}
	c.flights[key] = fl
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, fl, true
}

// endFlight publishes the leader's outcome: stores the entry (when
// replayable), persists it to the disk tier, retires the flight, and
// releases the waiters. The entry is cached before the flight is removed, so
// a prober never finds the key in neither place while a fill exists.
func (c *FuncCache) endFlight(key string, fl *flight, entry *funcCacheEntry) {
	if entry != nil {
		c.put(key, entry)
		c.persist(key, entry)
	}
	c.retireFlight(key, fl, entry)
}

// endFlightLoaded releases a flight whose entry came from the disk or peer
// tier: externalLookup already admitted it to memory (and, for peer fetches,
// wrote it through to disk), so only the flight bookkeeping remains.
func (c *FuncCache) endFlightLoaded(key string, fl *flight, entry *funcCacheEntry) {
	c.retireFlight(key, fl, entry)
}

func (c *FuncCache) retireFlight(key string, fl *flight, entry *funcCacheEntry) {
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	fl.entry = entry
	close(fl.done)
}

// put stores entry under key, evicting the least recently used entry when
// full. Storing an already-present key refreshes its value and recency
// without counting an eviction.
func (c *FuncCache) put(key string, entry *funcCacheEntry) {
	entry.key = key
	entry.seal = sealEntry(entry)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = entry
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.capacity {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*funcCacheEntry).key)
		c.evictions.Add(1)
	}
	c.entries[key] = c.lru.PushFront(entry)
}

// funcKey is the full cache key for one function under one context.
func funcKey(ctxKey string, f *cminor.FuncDef) string {
	h := sha256.New()
	io.WriteString(h, ctxKey)
	io.WriteString(h, "\x00")
	io.WriteString(h, cminor.FuncString(f))
	return hex.EncodeToString(h.Sum(nil))
}

// contextKey hashes everything a function-body walk can observe besides the
// body itself. It must be computed after prepareFlow (it hashes the
// address-taken set) and conservatively includes the returns-fresh facts,
// which depend on other functions' bodies.
func (en *engine) contextKey(opts Options) string {
	h := sha256.New()
	io.WriteString(h, "reg\x00")
	io.WriteString(h, en.reg.Fingerprint())
	fmt.Fprintf(h, "\x00opts\x00flow=%v\x00", opts.FlowSensitive)
	io.WriteString(h, "structs\x00")
	for _, st := range en.prog.Structs {
		fmt.Fprintf(h, "struct %s{", st.Name)
		for _, f := range st.Fields {
			fmt.Fprintf(h, "%s %s;", f.Type, f.Name)
		}
		io.WriteString(h, "}\x00")
	}
	io.WriteString(h, "globals\x00")
	for _, g := range en.prog.Globals {
		io.WriteString(h, cminor.DeclString(g))
		io.WriteString(h, "\x00")
	}
	io.WriteString(h, "sigs\x00")
	for _, f := range en.prog.Funcs {
		io.WriteString(h, cminor.HeaderString(f))
		if f.Body == nil {
			io.WriteString(h, " <nobody>")
		}
		io.WriteString(h, "\x00")
	}
	// Flow refinement consults the address-taken set, which any function
	// body can extend.
	io.WriteString(h, "addrtaken\x00")
	taken := make([]string, 0, len(en.addrTaken))
	for name := range en.addrTaken {
		taken = append(taken, name)
	}
	sort.Strings(taken)
	for _, name := range taken {
		io.WriteString(h, name)
		io.WriteString(h, "\x00")
	}
	// Returns-fresh facts: for every qualifier with a fresh assign clause,
	// whether each function provably returns a fresh reference. This is the
	// only cross-function body information a walk consumes, so capturing the
	// facts (rather than the bodies) keeps unrelated edits from invalidating
	// every function.
	io.WriteString(h, "fresh\x00")
	for _, d := range en.reg.Defs() {
		if !hasFreshAssign(d) {
			continue
		}
		for _, f := range en.prog.Funcs {
			fmt.Fprintf(h, "%s|%s=%v\x00", f.Name, d.Name, en.returnsFresh(f.Name, d.Name))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hasFreshAssign reports whether d declares a fresh assign clause.
func hasFreshAssign(d *qdl.Def) bool {
	for _, cl := range d.Assigns {
		if _, ok := cl.Pat.(qdl.PFresh); ok {
			return true
		}
	}
	return false
}

// checkFuncCached walks one function on a fresh child engine, consulting and
// populating the function cache. The receiver must be a freshly created
// child (empty diagnostics and zero stats), so its whole post-walk state is
// exactly the function's contribution. Concurrent calls on one key coalesce
// to a single walk (see beginLookup).
func (en *engine) checkFuncCached(f *cminor.FuncDef) {
	if en.fc == nil {
		en.safeCheckFunc(f)
		return
	}
	// FireErr, not Fire: the parallel walk's pool workers have no recovery
	// around the cache path, so an injected replay panic must be contained
	// here. Any replay fault degrades to a fresh walk — never a crash, never
	// a wrong replay. The degraded walk bypasses the flight map entirely, so
	// an injected fault can neither strand waiters nor poison the fill.
	if err := fpCacheReplay.FireErr(); err != nil {
		en.stats.FuncCacheMisses++
		en.safeCheckFunc(f)
		return
	}
	key := funcKey(en.ctxKey, f)
	entry, fl, leader := en.fc.beginLookup(key)
	if entry != nil {
		en.stats.FuncCacheHits++
		en.replayEntry(entry, f)
		return
	}
	if leader {
		// Before paying for a walk, probe the external tiers (disk, then
		// peers). Doing this on the leader path keeps the singleflight
		// property: concurrent lookups of one key cost one disk read or one
		// peer fetch, not N.
		if ext := en.fc.externalLookup(key); ext != nil {
			en.stats.FuncCacheHits++
			en.replayEntry(ext, f)
			en.fc.endFlightLoaded(key, fl, ext)
			return
		}
		en.stats.FuncCacheMisses++
		en.safeCheckFunc(f)
		stored, ok := en.entryFromWalk(f)
		if !ok {
			stored = nil
		}
		en.fc.endFlight(key, fl, stored)
		return
	}
	// Waiter: another caller is walking this exact function under this exact
	// context. Share its result instead of duplicating the walk — unless our
	// run is canceled first, in which case we return with nothing (the run's
	// Result.Err marks it inconclusive, same as any unwalked function).
	var done <-chan struct{}
	if en.ctx != nil {
		done = en.ctx.Done()
	}
	select {
	case <-fl.done:
	case <-done:
		return
	}
	if fl.entry != nil {
		en.stats.FuncCacheCoalesced++
		en.replayEntry(fl.entry, f)
		return
	}
	// The leader's walk was not replayable (transient "internal" outcome);
	// walk independently rather than replay a result the cache refused.
	en.stats.FuncCacheMisses++
	en.safeCheckFunc(f)
}

// replayEntry rebases and appends a cached function's diagnostics and
// statistic deltas onto the (child) engine.
func (en *engine) replayEntry(entry *funcCacheEntry, f *cminor.FuncDef) {
	for _, d := range entry.diags {
		en.diags = append(en.diags, Diagnostic{
			Pos:  cminor.Pos{File: f.Pos.File, Line: f.Pos.Line + d.relLine, Col: d.col},
			Code: d.code,
			Msg:  d.msg,
		})
	}
	en.stats.RestrictChecks += entry.restrictChecks
	en.stats.RestrictFailures += entry.restrictFailures
	en.stats.MemoHits += entry.memoHits
	en.stats.MemoMisses += entry.memoMisses
}

// entryFromWalk converts a completed walk's child-engine state into a cache
// entry. It refuses (ok=false) when the result is not safely replayable:
// an "internal" diagnostic records a recovered panic (transient, like the
// prover's uncached panic outcomes), and a diagnostic positioned outside the
// function's own span cannot be rebased by line offset.
func (en *engine) entryFromWalk(f *cminor.FuncDef) (*funcCacheEntry, bool) {
	entry := &funcCacheEntry{
		diags:            make([]relDiag, 0, len(en.diags)),
		restrictChecks:   en.stats.RestrictChecks,
		restrictFailures: en.stats.RestrictFailures,
		memoHits:         en.stats.MemoHits,
		memoMisses:       en.stats.MemoMisses,
	}
	for _, d := range en.diags {
		if d.Code == "internal" {
			return nil, false
		}
		if d.Pos.File != f.Pos.File || d.Pos.Line < f.Pos.Line {
			return nil, false
		}
		entry.diags = append(entry.diags, relDiag{
			relLine: d.Pos.Line - f.Pos.Line,
			col:     d.Pos.Col,
			code:    d.Code,
			msg:     d.Msg,
		})
	}
	return entry, true
}

package checker

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cminor"
	"repro/internal/qdl"
	"repro/internal/quals"
)

func parseWith(t *testing.T, reg *qdl.Registry, src string) *cminor.Program {
	t.Helper()
	prog, err := cminor.Parse("test.c", src, reg.Names())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func checkCached(t *testing.T, reg *qdl.Registry, src string, fc *FuncCache) *Result {
	t.Helper()
	return CheckWithCache(context.Background(), parseWith(t, reg, src), reg, Options{}, fc)
}

// cacheSrc has one clean function and two violating ones, so replays carry
// both empty and non-empty diagnostic sets.
const cacheSrc = `
int* nonnull g;

void alpha() {
  int x = 1;
}
void beta(int* p) {
  g = p;
}
void gamma(int* q) {
  g = q;
}
`

func TestFuncCacheColdWarmEquivalence(t *testing.T) {
	reg := quals.MustStandard()
	fc := NewFuncCache(0)

	plain := checkCached(t, reg, cacheSrc, nil)
	cold := checkCached(t, reg, cacheSrc, fc)
	if cold.Stats.FuncCacheMisses != 3 || cold.Stats.FuncCacheHits != 0 {
		t.Errorf("cold run: %d misses / %d hits, want 3 / 0",
			cold.Stats.FuncCacheMisses, cold.Stats.FuncCacheHits)
	}
	warm := checkCached(t, reg, cacheSrc, fc)
	if warm.Stats.FuncCacheHits != 3 || warm.Stats.FuncCacheMisses != 0 {
		t.Errorf("warm run: %d hits / %d misses, want 3 / 0",
			warm.Stats.FuncCacheHits, warm.Stats.FuncCacheMisses)
	}
	// Cached, cold, and cache-free runs must be indistinguishable.
	want := fmt.Sprint(plain.Diags)
	if got := fmt.Sprint(cold.Diags); got != want {
		t.Errorf("cold cached diags differ from uncached:\n got %s\nwant %s", got, want)
	}
	if got := fmt.Sprint(warm.Diags); got != want {
		t.Errorf("replayed diags differ from uncached:\n got %s\nwant %s", got, want)
	}
	if plain.Stats.RestrictChecks != warm.Stats.RestrictChecks ||
		plain.Stats.RestrictFailures != warm.Stats.RestrictFailures {
		t.Errorf("replayed restrict stats differ: cached %d/%d, uncached %d/%d",
			warm.Stats.RestrictChecks, warm.Stats.RestrictFailures,
			plain.Stats.RestrictChecks, plain.Stats.RestrictFailures)
	}
}

// TestFuncCacheIncrementalEdit is the service's whole point: editing one
// function re-checks only that function, and the untouched functions —
// shifted down a line by the edit — replay their diagnostics at rebased
// positions identical to a from-scratch check.
func TestFuncCacheIncrementalEdit(t *testing.T) {
	reg := quals.MustStandard()
	fc := NewFuncCache(0)
	checkCached(t, reg, cacheSrc, fc)

	edited := `
int* nonnull g;

void alpha() {
  int y = 2;
  int x = 1;
}
void beta(int* p) {
  g = p;
}
void gamma(int* q) {
  g = q;
}
`
	warm := checkCached(t, reg, edited, fc)
	if warm.Stats.FuncCacheMisses != 1 {
		t.Errorf("edit of one function caused %d misses, want 1", warm.Stats.FuncCacheMisses)
	}
	if warm.Stats.FuncCacheHits != 2 {
		t.Errorf("unchanged functions scored %d hits, want 2", warm.Stats.FuncCacheHits)
	}
	want := checkCached(t, reg, edited, nil)
	if got, w := fmt.Sprint(warm.Diags), fmt.Sprint(want.Diags); got != w {
		t.Errorf("rebased replay diverges from a fresh check:\n got %s\nwant %s", got, w)
	}
	// The replayed positions must reflect the shift (beta's violation moved
	// from line 8 to line 9).
	found := false
	for _, d := range warm.Diags {
		if d.Code == "qual" && d.Pos.Line == 9 {
			found = true
		}
	}
	if !found {
		t.Errorf("no qual diagnostic rebased to line 9: %v", warm.Diags)
	}
}

// TestFuncCacheIsolation shares one cache across a different registry and
// different options; neither may replay entries minted under the other
// configuration.
func TestFuncCacheIsolation(t *testing.T) {
	fc := NewFuncCache(0)
	std := quals.MustStandard()
	// Annotation-free source so it parses under any registry; nonnull's
	// program-wide dereference restrict still flags the unguarded *p.
	src := `
void f(int* p) {
  int x = *p;
}
`
	first := checkCached(t, std, src, fc)
	if len(first.Diags) == 0 {
		t.Fatal("expected a nonnull restrict diagnostic under the standard registry")
	}

	// Same source text under a registry without nonnull: a miss, and the
	// violation vanishes rather than being replayed.
	uniqueOnly, err := qdl.Load(map[string]string{"unique.qdl": quals.Unique})
	if err != nil {
		t.Fatal(err)
	}
	other := checkCached(t, uniqueOnly, src, fc)
	if other.Stats.FuncCacheHits != 0 {
		t.Errorf("different registry hit %d entries of the standard run", other.Stats.FuncCacheHits)
	}
	for _, d := range other.Diags {
		t.Errorf("diagnostic replayed without nonnull loaded: %s", d)
	}

	// Same source and registry, different flow-sensitivity: fresh context.
	prog := parseWith(t, std, cacheSrc)
	flow := CheckWithCache(context.Background(), prog, std, Options{FlowSensitive: true}, fc)
	if flow.Stats.FuncCacheHits != 0 {
		t.Errorf("flow-sensitive run hit %d flow-insensitive entries", flow.Stats.FuncCacheHits)
	}
}

// TestFuncCacheFreshFactInvalidation covers the one cross-function
// dependency a body walk has: under the fresh-extended unique qualifier,
// init's verdict depends on whether parse_dfa returns a fresh reference.
// Editing only parse_dfa's body must invalidate init's cached (clean) entry
// rather than replaying it stale.
func TestFuncCacheFreshFactInvalidation(t *testing.T) {
	reg, err := qdl.Load(map[string]string{"unique.qdl": quals.UniqueFresh})
	if err != nil {
		t.Fatal(err)
	}
	fc := NewFuncCache(0)

	freshSrc := `
struct dfastate { int n; };
struct dfastate* unique dfa;
struct dfastate* parse_dfa() {
  struct dfastate* unique d;
  d = (struct dfastate*)malloc(sizeof(struct dfastate));
  return d;
}
void init() {
  dfa = parse_dfa();
}
`
	clean := checkCached(t, reg, freshSrc, fc)
	for _, d := range clean.Diags {
		t.Errorf("fresh-returning callee flagged: %s", d)
	}

	// parse_dfa now returns an unqualified local: no longer provably fresh.
	// init's text is unchanged, but its cached entry must not replay.
	staleSrc := `
struct dfastate { int n; };
struct dfastate* unique dfa;
struct dfastate* parse_dfa() {
  struct dfastate* d2;
  d2 = (struct dfastate*)malloc(sizeof(struct dfastate));
  return d2;
}
void init() {
  dfa = parse_dfa();
}
`
	got := checkCached(t, reg, staleSrc, fc)
	if got.Stats.FuncCacheHits != 0 {
		t.Errorf("fresh-fact change still hit %d cached entries", got.Stats.FuncCacheHits)
	}
	want := checkCached(t, reg, staleSrc, nil)
	if g, w := fmt.Sprint(got.Diags), fmt.Sprint(want.Diags); g != w {
		t.Fatalf("cached diags diverge from fresh check:\n got %s\nwant %s", g, w)
	}
	found := false
	for _, d := range got.Diags {
		if d.Code == "assign" {
			found = true
		}
	}
	if !found {
		t.Errorf("stale fresh fact replayed: no assign diagnostic in %v", got.Diags)
	}
}

// TestFuncCacheSharedAcrossConcurrency checks the serial and parallel walks
// agree through one shared cache (each hitting entries the other stored).
func TestFuncCacheSharedAcrossConcurrency(t *testing.T) {
	reg := quals.MustStandard()
	fc := NewFuncCache(0)
	prog := parseWith(t, reg, cacheSrc)
	serial := CheckWithCache(context.Background(), prog, reg, Options{Concurrency: 1}, fc)
	parallel := CheckWithCache(context.Background(), prog, reg, Options{Concurrency: 8}, fc)
	if parallel.Stats.FuncCacheHits != 3 {
		t.Errorf("parallel run hit %d of the serial run's 3 entries", parallel.Stats.FuncCacheHits)
	}
	if g, w := fmt.Sprint(parallel.Diags), fmt.Sprint(serial.Diags); g != w {
		t.Errorf("parallel replay differs from serial:\n got %s\nwant %s", g, w)
	}
}

// TestFuncCacheSealRejectsCorruption: every entry carries a content seal
// computed at put and re-verified at get. Corrupting a stored entry in
// place turns the would-be hit into a counted rejection plus a miss, the
// function is re-walked (diagnostics identical to an uncached check), and
// the re-stored entry serves hits again.
func TestFuncCacheSealRejectsCorruption(t *testing.T) {
	reg := quals.MustStandard()
	fc := NewFuncCache(0)
	checkCached(t, reg, cacheSrc, fc)
	if fc.Len() != 3 {
		t.Fatalf("seed run cached %d entries, want 3", fc.Len())
	}

	// Corrupt one non-empty entry's payload behind the seal's back.
	fc.mu.Lock()
	corrupted := 0
	for el := fc.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*funcCacheEntry)
		if len(e.diags) > 0 && corrupted == 0 {
			e.diags[0].msg = "tampered"
			corrupted++
		}
	}
	fc.mu.Unlock()
	if corrupted != 1 {
		t.Fatalf("corrupted %d entries, want 1", corrupted)
	}

	got := checkCached(t, reg, cacheSrc, fc)
	if got.Stats.FuncCacheHits != 2 || got.Stats.FuncCacheMisses != 1 {
		t.Errorf("post-corruption run: %d hits / %d misses, want 2 / 1",
			got.Stats.FuncCacheHits, got.Stats.FuncCacheMisses)
	}
	if st := fc.Stats(); st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
	want := checkCached(t, reg, cacheSrc, nil)
	if g, w := fmt.Sprint(got.Diags), fmt.Sprint(want.Diags); g != w {
		t.Errorf("post-corruption diags diverge from uncached:\n got %s\nwant %s", g, w)
	}
	for _, d := range got.Diags {
		if d.Msg == "tampered" {
			t.Fatal("tampered diagnostic replayed despite the seal")
		}
	}

	// The re-walk re-stored a sealed entry: full hits, no new rejections.
	again := checkCached(t, reg, cacheSrc, fc)
	if again.Stats.FuncCacheHits != 3 {
		t.Errorf("re-stored entry not served: %d hits, want 3", again.Stats.FuncCacheHits)
	}
	if st := fc.Stats(); st.Rejected != 1 {
		t.Errorf("Rejected moved to %d after recovery, want still 1", st.Rejected)
	}
}

// TestFuncCacheRapidSuccessiveEdits drives one function through three
// versions in quick succession — the watch daemon's save-storm shape — and
// asserts that no intermediate version's entry is ever served for newer
// source, and that the final warm incremental result is byte-identical to a
// cold cache-free check of the final state.
func TestFuncCacheRapidSuccessiveEdits(t *testing.T) {
	reg := quals.MustStandard()
	fc := NewFuncCache(0)

	version := func(n int) string {
		return fmt.Sprintf(`
int* nonnull g;

void alpha() {
  int x = %d;
}
void beta(int* p) {
  g = p;
}
`, n)
	}

	checkCached(t, reg, version(1), fc)
	for n := 2; n <= 3; n++ {
		res := checkCached(t, reg, version(n), fc)
		// Each new body is a genuinely new content key: a miss, never a stale
		// replay of the previous version's entry.
		if res.Stats.FuncCacheMisses != 1 || res.Stats.FuncCacheHits != 1 {
			t.Errorf("version %d: %d misses / %d hits, want 1 / 1 (stale entry served?)",
				n, res.Stats.FuncCacheMisses, res.Stats.FuncCacheHits)
		}
		cold := checkCached(t, reg, version(n), nil)
		if got, want := fmt.Sprint(res.Diags), fmt.Sprint(cold.Diags); got != want {
			t.Errorf("version %d: warm incremental diags diverge from cold check:\n got %s\nwant %s", n, got, want)
		}
	}

	// Every distinct version must have minted its own entry (3 alpha bodies +
	// 1 shared beta body), and re-checking an old version again replays its
	// own entry, not a newer one's.
	if fc.Len() != 4 {
		t.Errorf("cache holds %d entries, want 4 (three alpha versions + beta)", fc.Len())
	}
	old := checkCached(t, reg, version(1), fc)
	if old.Stats.FuncCacheHits != 2 || old.Stats.FuncCacheMisses != 0 {
		t.Errorf("re-check of version 1: %d hits / %d misses, want 2 / 0",
			old.Stats.FuncCacheHits, old.Stats.FuncCacheMisses)
	}
	coldOld := checkCached(t, reg, version(1), nil)
	if got, want := fmt.Sprint(old.Diags), fmt.Sprint(coldOld.Diags); got != want {
		t.Errorf("version 1 replay diverges from cold check:\n got %s\nwant %s", got, want)
	}
}

package checker

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/cminor"
	"repro/internal/corpus"
	"repro/internal/input"
	"repro/internal/quals"
	"repro/internal/testutil/leak"
)

// renderTree flattens a TreeResult into the canonical diagnostic listing the
// CLI prints: one line per diagnostic, files in walk order.
func renderTree(res *TreeResult) string {
	var b strings.Builder
	for _, fr := range res.Files {
		if fr.Err != nil {
			fmt.Fprintf(&b, "%s: error: %v\n", fr.File, fr.Err)
			continue
		}
		for _, d := range fr.Diags {
			fmt.Fprintf(&b, "%s\n", d)
		}
	}
	return b.String()
}

func genTree(t *testing.T, files int) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := corpus.WriteTree(dir, files, 0x7ee5eed); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestTreeSerialParallelIdentical is the core determinism claim: the same
// tree checked at -j=1 and at -j=8, with and without a shared cache, yields
// byte-identical diagnostics.
func TestTreeSerialParallelIdentical(t *testing.T) {
	leak.Check(t)
	reg := quals.MustStandard()
	dir := genTree(t, 40)
	ctx := context.Background()

	serial, err := CheckTree(ctx, dir, reg, TreeOptions{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Files) != 40 {
		t.Fatalf("checked %d files, want 40", len(serial.Files))
	}
	want := renderTree(serial)
	if !strings.Contains(want, "[qual]") {
		t.Fatalf("corpus produced no qualifier diagnostics:\n%.400s", want)
	}
	for run := 0; run < 3; run++ {
		fc := NewFuncCache(0)
		par, err := CheckTree(ctx, dir, reg, TreeOptions{Workers: 8, Seed: uint64(run), Cache: fc})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderTree(par); got != want {
			t.Fatalf("parallel run %d diverged from serial:\n--- serial\n%.600s\n--- parallel\n%.600s", run, want, got)
		}
		// Warm second pass over the same cache must replay identically.
		warm, err := CheckTree(ctx, dir, reg, TreeOptions{Workers: 8, Seed: 99, Cache: fc})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderTree(warm); got != want {
			t.Fatalf("warm cached run %d diverged from serial", run)
		}
		if warm.Stats.FuncCacheHits == 0 {
			t.Errorf("warm run scored no cache hits: %+v", warm.Stats)
		}
	}
}

// TestTreeMatchesSingleFileChecks: a file checked inside a tree reports
// exactly what CheckWithCache reports for it alone.
func TestTreeMatchesSingleFileChecks(t *testing.T) {
	leak.Check(t)
	reg := quals.MustStandard()
	dir := genTree(t, 12)
	tree, err := CheckTree(context.Background(), dir, reg, TreeOptions{Workers: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range tree.Files {
		if fr.Err != nil {
			t.Fatalf("%s: %v", fr.File, fr.Err)
		}
		src := corpus.TreeFile(0x7ee5eed, fileIndexOf(t, fr.File))
		prog, err := cminor.Parse(fr.File, src, reg.Names())
		if err != nil {
			t.Fatal(err)
		}
		alone := CheckWithContext(context.Background(), prog, reg, Options{Concurrency: 1})
		if fmt.Sprint(fr.Diags) != fmt.Sprint(alone.Diags) {
			t.Errorf("%s: tree diags %v != standalone %v", fr.File, fr.Diags, alone.Diags)
		}
	}
}

func fileIndexOf(t *testing.T, rel string) int {
	t.Helper()
	var idx int
	if _, err := fmt.Sscanf(filepath.Base(rel), "file%04d.c", &idx); err != nil {
		t.Fatalf("unexpected tree file name %q: %v", rel, err)
	}
	return idx
}

// TestTreeWalkSkips: the decoy files WriteTree plants in vendor/, testdata/,
// and as non-.c files never reach the parser (they would fail loudly).
func TestTreeWalkSkips(t *testing.T) {
	leak.Check(t)
	dir := genTree(t, 8)
	res, err := CheckTree(context.Background(), dir, quals.MustStandard(), TreeOptions{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range res.Files {
		if strings.Contains(fr.File, "decoy") || strings.Contains(fr.File, "vendor") {
			t.Errorf("walker failed to skip %s", fr.File)
		}
		if fr.Err != nil {
			t.Errorf("%s: %v", fr.File, fr.Err)
		}
	}
	if res.Walk.SkippedDirs < 2 {
		t.Errorf("walk skipped %d dirs, want >= 2 (vendor, testdata)", res.Walk.SkippedDirs)
	}
}

// TestTreeCancellation: a canceled context returns promptly with Err set and
// no leaked scheduler goroutines (leak.Check).
func TestTreeCancellation(t *testing.T) {
	leak.Check(t)
	dir := genTree(t, 30)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := CheckTree(ctx, dir, quals.MustStandard(), TreeOptions{Workers: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Error("canceled tree check reported no Err")
	}
	for _, fr := range res.Files {
		if fr.Err == nil && len(fr.Diags) > 0 {
			// Files may legitimately complete before observing cancellation;
			// the ones that were cut short must carry the context error.
			continue
		}
	}
}

// TestTreeSchedulerTelemetry: a parallel run reports scheduler and reader
// stats consistent with the work done.
func TestTreeSchedulerTelemetry(t *testing.T) {
	leak.Check(t)
	dir := genTree(t, 20)
	res, err := CheckTree(context.Background(), dir, quals.MustStandard(), TreeOptions{Workers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Sched
	if st.Submitted != 20 {
		t.Errorf("submitted %d file tasks, want 20", st.Submitted)
	}
	if st.Spawned == 0 {
		t.Error("no per-function units spawned")
	}
	if st.Executed != st.Submitted+st.Spawned {
		t.Errorf("executed %d != submitted %d + spawned %d", st.Executed, st.Submitted, st.Spawned)
	}
	if res.Read.Files != 20 {
		t.Errorf("reader served %d files, want 20", res.Read.Files)
	}
	if res.Walk.Matched != 20 {
		t.Errorf("walk matched %d, want 20", res.Walk.Matched)
	}
}

// TestCoalescedLookups pins the singleflight protocol: with the one leader
// walk blocked, all other concurrent identical submissions must join its
// flight (Coalesced), and exactly one fill (Miss) happens in total.
func TestCoalescedLookups(t *testing.T) {
	leak.Check(t)
	reg := quals.MustStandard()
	const src = `
int* nonnull g;
void solo(int* p) {
  g = p;
}
`
	const clients = 32
	fc := NewFuncCache(0)
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	CheckFuncHook = func(*cminor.FuncDef) {
		entered <- struct{}{}
		<-release
	}
	defer func() { CheckFuncHook = nil }()

	var wg sync.WaitGroup
	results := make([]*Result, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			prog, err := cminor.Parse("solo.c", src, reg.Names())
			if err != nil {
				panic(err)
			}
			results[i] = CheckWithCache(context.Background(), prog, reg, Options{Concurrency: 1}, fc)
		}()
	}
	<-entered // the leader is inside its walk, holding the flight open
	// Every other client must end up parked on the leader's flight.
	for {
		if fc.Stats().Coalesced == clients-1 {
			break
		}
	}
	close(release)
	wg.Wait()

	st := fc.Stats()
	if st.Misses != 1 || st.Coalesced != clients-1 || st.Hits != 0 {
		t.Fatalf("stats %+v, want exactly 1 miss (the fill), %d coalesced, 0 hits", st, clients-1)
	}
	want := fmt.Sprint(results[0].Diags)
	if want == "[]" {
		t.Fatal("expected a diagnostic from the violating function")
	}
	for i, r := range results {
		if fmt.Sprint(r.Diags) != want {
			t.Errorf("client %d diags %v != %v", i, r.Diags, want)
		}
	}
}

// TestFuncCacheCountersRace is the satellite -race regression: counters are
// updated from concurrent lookups (including the coalescing path, which
// counts outside the cache lock) while Stats is read concurrently. Under
// -race this fails if any counter update is a read-modify-write.
func TestFuncCacheCountersRace(t *testing.T) {
	leak.Check(t)
	reg := quals.MustStandard()
	fc := NewFuncCache(0)
	dir := genTree(t, 10)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = fc.Stats()
				_ = fc.Len()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := CheckTree(context.Background(), dir, reg, TreeOptions{Workers: 2, Seed: 11, Cache: fc}); err != nil {
				panic(err)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	st := fc.Stats()
	if st.Hits+st.Misses+st.Coalesced == 0 {
		t.Error("no cache activity recorded")
	}
	// Fills (misses) bound the cache's size; every lookup is exactly one of
	// hit, miss, or coalesced, so the sum must cover every cached walk.
	if uint64(fc.Len()) > st.Misses {
		t.Errorf("cache holds %d entries but only %d fills were counted", fc.Len(), st.Misses)
	}
}

// TestTreeReaderRejectsOversize: MaxFileBytes is enforced per file without
// failing the rest of the tree.
func TestTreeReaderRejectsOversize(t *testing.T) {
	leak.Check(t)
	dir := genTree(t, 4)
	res, err := CheckTree(context.Background(), dir, quals.MustStandard(), TreeOptions{
		Workers: 2,
		Seed:    1,
		Walk:    input.WalkOptions{MaxFileBytes: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range res.Files {
		if fr.Err != nil {
			t.Errorf("%s: %v", fr.File, fr.Err)
		}
	}
}

func writeTreeFile(t *testing.T, root, rel, body string) {
	t.Helper()
	full := filepath.Join(root, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTreeCheckerIncrementalReuse is the watch daemon's engine contract: one
// TreeChecker survives across passes, and re-checking an edited file through
// it misses the cache only for the function whose content actually changed.
func TestTreeCheckerIncrementalReuse(t *testing.T) {
	leak.Check(t)
	reg := quals.MustStandard()
	dir := t.TempDir()
	writeTreeFile(t, dir, "a.c", `
int* nonnull g;

int keep(int a) {
  return a;
}
void violate(int* p) {
  g = p;
}
`)
	writeTreeFile(t, dir, "b.c", "int other(int n) {\n  return n;\n}\n")

	fc := NewFuncCache(0)
	tc := NewTreeChecker(reg, TreeOptions{Workers: 2, Seed: 1, Cache: fc})
	defer tc.Close()
	ctx := context.Background()

	full, err := tc.CheckTree(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.FuncCacheMisses != 3 {
		t.Fatalf("cold pass: %d misses, want 3", full.Stats.FuncCacheMisses)
	}

	// Edit exactly one function body; signatures and interfaces unchanged.
	writeTreeFile(t, dir, "a.c", `
int* nonnull g;

int keep(int a) {
  return a;
}
void violate(int* p) {
  int* q = p;
  g = q;
}
`)
	f, ok, err := input.StatFile(dir, "a.c", input.WalkOptions{})
	if err != nil || !ok {
		t.Fatalf("StatFile: ok=%v err=%v", ok, err)
	}
	res := tc.CheckFiles(ctx, []input.File{f})
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("incremental re-check: %+v", res)
	}
	if res[0].Stats.FuncCacheMisses != 1 || res[0].Stats.FuncCacheHits != 1 {
		t.Errorf("incremental re-check: %d misses / %d hits, want 1 / 1 (only the edited function re-walks)",
			res[0].Stats.FuncCacheMisses, res[0].Stats.FuncCacheHits)
	}
	// The warm incremental result must match a cold whole-tree pass of the
	// current state.
	cold, err := CheckTree(ctx, dir, reg, TreeOptions{Workers: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(res[0].Diags), fmt.Sprint(cold.Files[0].Diags); got != want {
		t.Errorf("incremental diags diverge from cold pass:\n got %s\nwant %s", got, want)
	}
}

// TestTreeVanishedFileDegrades: a file deleted between walk and read must not
// fail the pass under DegradeReadErrors — it becomes that file's own
// transient "internal" diagnostic — while the default mode still reports a
// hard per-file error.
func TestTreeVanishedFileDegrades(t *testing.T) {
	leak.Check(t)
	reg := quals.MustStandard()
	dir := t.TempDir()
	writeTreeFile(t, dir, "a.c", "int a(int n) {\n  return n;\n}\n")
	writeTreeFile(t, dir, "b.c", "int b(int n) {\n  return n;\n}\n")
	writeTreeFile(t, dir, "c.c", "int c(int n) {\n  return n;\n}\n")

	files, _, err := input.Walk(dir, input.WalkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The deletion happens after the walk, before the read — the watch
	// daemon's routine race.
	if err := os.Remove(filepath.Join(dir, "b.c")); err != nil {
		t.Fatal(err)
	}

	tc := NewTreeChecker(reg, TreeOptions{Workers: 2, Seed: 1, DegradeReadErrors: true})
	defer tc.Close()
	res := tc.CheckFiles(context.Background(), files)
	if res[1].Err != nil {
		t.Errorf("degraded mode still returned a hard error: %v", res[1].Err)
	}
	if len(res[1].Diags) != 1 || res[1].Diags[0].Code != "internal" {
		t.Errorf("vanished file diags = %v, want one internal diagnostic", res[1].Diags)
	}
	for _, i := range []int{0, 2} {
		if res[i].Err != nil || len(res[i].Diags) != 0 {
			t.Errorf("intact file %s affected: err=%v diags=%v", res[i].File, res[i].Err, res[i].Diags)
		}
	}

	hard := NewTreeChecker(reg, TreeOptions{Workers: 2, Seed: 1})
	defer hard.Close()
	hres := hard.CheckFiles(context.Background(), files)
	if hres[1].Err == nil {
		t.Error("default mode swallowed the read failure")
	}
}

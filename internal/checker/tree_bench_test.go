package checker

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/corpus"
	"repro/internal/quals"
)

// BenchmarkCheckTree measures cold repo-scale checking throughput over the
// work-stealing scheduler: every iteration re-checks the same generated
// multi-file corpus with a fresh function cache, so the number is the
// walk+read+parse+check pipeline, not cache replay. The j1/jmax pair keeps
// the serial-vs-parallel ratio visible in BENCH_tree.json on any machine
// (jmax runs NumCPU workers; on a single-core box the two coincide).
func BenchmarkCheckTree(b *testing.B) {
	reg := quals.MustStandard()
	dir := b.TempDir()
	const files = 96
	if _, err := corpus.WriteTree(dir, files, 0x7ee5eed); err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"j1", 1},
		{"jmax", runtime.NumCPU()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := CheckTree(context.Background(), dir, reg, TreeOptions{
					Workers: bc.workers,
					Seed:    1,
					Cache:   NewFuncCache(0),
				})
				if err != nil || res.Err != nil {
					b.Fatalf("CheckTree: %v / %v", err, res.Err)
				}
				if len(res.Files) != files {
					b.Fatalf("checked %d files, want %d", len(res.Files), files)
				}
			}
			b.ReportMetric(float64(files)*float64(b.N)/b.Elapsed().Seconds(), "files/s")
		})
	}
}

package checker

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cminor"
	"repro/internal/faults"
	"repro/internal/qdl"
)

// Diagnostic is a qualifier-checking warning. Code classifies the rule that
// fired: "base" (ordinary typechecking), "qual" (missing value qualifier),
// "restrict", "assign", "disallow", "addrof", "annotation", or "internal"
// (a checker panic recovered while walking one function).
type Diagnostic struct {
	Pos  cminor.Pos
	Code string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Code, d.Msg)
}

// Stats aggregates the counts the paper's evaluation tables report.
type Stats struct {
	// Dereferences is the number of dereference sites (including desugared
	// array indexing), the denominator of Table 1.
	Dereferences int
	// Annotations counts qualifier occurrences in declared types, per
	// qualifier name.
	Annotations map[string]int
	// QualCasts counts casts to types carrying each qualifier.
	QualCasts map[string]int
	// RefUses counts r-value occurrences of each reference-qualified
	// variable (the "references validated" count of section 6.2 when the
	// program checks cleanly).
	RefUses map[string]int
	// RestrictChecks / RestrictFailures count restrict-clause applications.
	RestrictChecks   int
	RestrictFailures int
	// MemoHits / MemoMisses count qualifier-derivation memo lookups (the
	// per-AST-node qualSet cache), the checker's analogue of the prover's
	// cache counters.
	MemoHits   int
	MemoMisses int
	// FuncCacheHits / FuncCacheMisses count function-granular result cache
	// lookups (CheckWithCache only; zero otherwise). A hit means the
	// function's body walk was skipped and its cached diagnostics replayed.
	// FuncCacheCoalesced counts lookups that shared another in-flight walk's
	// result instead of walking (singleflight; see cache.go).
	FuncCacheHits      int
	FuncCacheMisses    int
	FuncCacheCoalesced int
}

// Result is the outcome of qualifier checking.
type Result struct {
	Diags []Diagnostic
	// Casts lists casts to value-qualified types, for run-time check
	// instrumentation (section 2.1.3).
	Casts []*cminor.Cast
	Stats Stats
	Info  *cminor.TypeInfo
	// Err is set when the run was cut short (context canceled or deadline
	// expired): diagnostics for functions not yet walked are missing, so an
	// absent warning is inconclusive rather than a clean bill.
	Err error
}

// Errors returns the diagnostics with the given codes (all when none given).
func (r *Result) Errors(codes ...string) []Diagnostic {
	if len(codes) == 0 {
		return r.Diags
	}
	want := map[string]bool{}
	for _, c := range codes {
		want[c] = true
	}
	var out []Diagnostic
	for _, d := range r.Diags {
		if want[d.Code] {
			out = append(out, d)
		}
	}
	return out
}

type engine struct {
	reg   *qdl.Registry
	info  *cminor.TypeInfo
	prog  *cminor.Program
	memo  map[cminor.Expr]map[string]bool
	diags []Diagnostic
	stats Stats
	curFn *cminor.FuncDef

	// Flow-sensitivity state (the section 8 extension; see flow.go). env is
	// the current refinement environment; it stays empty when flow is off.
	flow        bool
	env         refEnv
	addrTaken   map[string]bool
	globalNames map[string]bool

	// Precomputed restrict clauses, applied during the statement walk.
	rExprClauses  []rclause
	rDerefClauses []rclause

	// freshMemo caches returnsFresh results keyed by "fn|qual"; entries in
	// progress are pinned false (least fixpoint: recursion must bottom out
	// in a syntactically fresh return).
	freshMemo map[string]bool

	// Derivation tables (see prepareDerive): the case-bearing value
	// qualifier definitions and, per definition, whether its where-clauses
	// consult qualifier sets. Built lazily on first qualSet call and shared
	// read-only with child engines.
	deriveReady bool
	valueDefs   []*qdl.Def
	defCurDep   []bool

	// Function-granular result cache state (see cache.go). fc is nil for
	// plain CheckWithContext runs; ctxKey is the context hash shared by every
	// function key of this run. ctx bounds flight waits on the coalescing
	// path (a canceled run stops waiting for another caller's walk).
	fc     *FuncCache
	ctxKey string
	ctx    context.Context
}

type rclause struct {
	def *qdl.Def
	cl  qdl.Clause
}

// Options configures qualifier checking.
type Options struct {
	// FlowSensitive enables branch-condition refinement (section 8): inside
	// "if (x != NULL)" the variable x additionally carries every value
	// qualifier whose invariant the condition implies.
	FlowSensitive bool
	// Concurrency bounds the worker pool checking functions in parallel.
	// 0 means runtime.GOMAXPROCS(0); 1 forces the serial walk. Diagnostics
	// are merged back into source order, so the result is identical at any
	// setting.
	Concurrency int
	// Types supplies precomputed base type information (with TypeDiags, the
	// diagnostics the same cminor.TypeCheck run produced) so repeated checks
	// of one unchanged program skip re-typechecking. The caller must not
	// have mutated the program since the TypeCheck run. Nil means typecheck
	// here.
	Types     *cminor.TypeInfo
	TypeDiags []cminor.Diagnostic
}

// concurrency resolves the effective worker count.
func (o Options) concurrency() int {
	if o.Concurrency > 0 {
		return o.Concurrency
	}
	return runtime.GOMAXPROCS(0)
}

// Check performs qualifier checking of prog against the registry's type
// rules and returns diagnostics, instrumentation points, and statistics.
func Check(prog *cminor.Program, reg *qdl.Registry) *Result {
	return CheckWith(prog, reg, Options{})
}

// CheckWith is Check with explicit options.
func CheckWith(prog *cminor.Program, reg *qdl.Registry, opts Options) *Result {
	return CheckWithContext(context.Background(), prog, reg, opts)
}

// CheckWithContext is CheckWith with cancellation: a canceled context stops
// the function-body walk early and records the cancellation on Result.Err
// (diagnostics gathered so far are still returned).
func CheckWithContext(ctx context.Context, prog *cminor.Program, reg *qdl.Registry, opts Options) *Result {
	return CheckWithCache(ctx, prog, reg, opts, nil)
}

// CheckWithCache is CheckWithContext backed by a function-granular result
// cache: function bodies whose content-addressed key (position-free function
// source × registry fingerprint × options × program interface, see cache.go)
// is cached replay their stored diagnostics instead of being walked. A nil
// cache disables caching. Program-level passes (typechecking unless
// Options.Types is supplied, annotation validation, global initializers, the
// address-of pass, statistics collection) always run; only body walks are
// reused. Safe for concurrent use with a shared cache.
func CheckWithCache(ctx context.Context, prog *cminor.Program, reg *qdl.Registry, opts Options, fc *FuncCache) *Result {
	en := newEngine(ctx, prog, reg, opts, fc)
	en.preFuncPasses()
	en.checkFuncs(ctx, opts.concurrency())
	en.addrOfPass()
	return en.finishResult(ctx)
}

// newEngine builds a checking engine and runs every pass that precedes the
// per-function walks: typechecking (unless precomputed), flow precomputation,
// context-key derivation, base diagnostics, and annotation validation. The
// tree checker (tree.go) uses the same constructor so a file checked inside a
// tree and alone produce byte-identical diagnostics.
func newEngine(ctx context.Context, prog *cminor.Program, reg *qdl.Registry, opts Options, fc *FuncCache) *engine {
	info, baseDiags := opts.Types, opts.TypeDiags
	if info == nil {
		info, baseDiags = cminor.TypeCheck(prog)
	}
	en := &engine{
		reg:  reg,
		info: info,
		prog: prog,
		memo: map[cminor.Expr]map[string]bool{},
		flow: opts.FlowSensitive,
		env:  refEnv{},
		ctx:  ctx,
		stats: Stats{
			Annotations: map[string]int{},
			QualCasts:   map[string]int{},
			RefUses:     map[string]int{},
		},
	}
	en.prepareFlow()
	if fc != nil {
		en.fc = fc
		en.ctxKey = en.contextKey(opts)
	}
	for _, d := range baseDiags {
		en.diags = append(en.diags, Diagnostic{Pos: d.Pos, Code: "base", Msg: d.Msg})
	}
	en.validateAnnotations()
	return en
}

// finishResult runs the post-function statistics walk (cast collection,
// dereference and reference-use counts) and packages the Result.
func (en *engine) finishResult(ctx context.Context) *Result {
	result := &Result{Diags: en.diags, Stats: en.stats, Info: en.info, Err: ctx.Err()}
	// Collect value-qualified casts for instrumentation and count stats.
	cminor.Walk(en.prog, cminor.Visitor{
		Expr: func(e cminor.Expr) {
			if c, ok := e.(*cminor.Cast); ok {
				for _, q := range cminor.QualsOf(c.Type) {
					en.stats.QualCasts[q]++
				}
				if len(en.valueQualsOf(c.Type)) > 0 {
					result.Casts = append(result.Casts, c)
				}
			}
		},
		LValue: func(lv cminor.LValue) {
			if _, ok := lv.(*cminor.DerefLV); ok {
				en.stats.Dereferences++
			}
			if v, ok := lv.(*cminor.VarLV); ok {
				if def := en.info.VarDefs[v]; def != nil && len(en.refQualsOf(def.Type)) > 0 {
					en.stats.RefUses[v.Name]++
				}
			}
		},
	})
	result.Stats = en.stats
	return result
}

func (en *engine) errorf(pos cminor.Pos, code, format string, args ...interface{}) {
	en.diags = append(en.diags, Diagnostic{Pos: pos, Code: code, Msg: fmt.Sprintf(format, args...)})
}

// prepareFlow precomputes the address-taken and global-name sets used by
// refinement (cheap even when flow is off; addrTaken also serves Infer's
// exclusions in spirit).
func (en *engine) prepareFlow() {
	en.addrTaken = map[string]bool{}
	en.globalNames = map[string]bool{}
	for _, g := range en.prog.Globals {
		en.globalNames[g.Name] = true
	}
	cminor.Walk(en.prog, cminor.Visitor{Expr: func(e cminor.Expr) {
		if ao, ok := e.(*cminor.AddrOf); ok {
			if v, ok := ao.LV.(*cminor.VarLV); ok {
				en.addrTaken[v.Name] = true
			}
		}
	}})
}

// ---- Annotation validation ----

// validateAnnotations checks every qualifier occurrence in a declared type:
// the qualifier's subject type pattern must match the type it annotates, and
// Var-classified reference qualifiers may only annotate variables.
func (en *engine) validateAnnotations() {
	checkType := func(pos cminor.Pos, t cminor.Type, isVariable bool, what string) {
		var walk func(t cminor.Type, top bool)
		walk = func(t cminor.Type, top bool) {
			switch t := t.(type) {
			case cminor.QualType:
				for _, q := range t.Quals {
					en.stats.Annotations[q]++
					d := en.reg.Lookup(q)
					if d == nil {
						en.errorf(pos, "annotation", "unknown qualifier %s on %s", q, what)
						continue
					}
					b := newBindings()
					if !en.matchTypePat(d.Subject.Type, t.Base, b) {
						en.errorf(pos, "annotation", "qualifier %s applies to %s types, but annotates %s (%s)", q, d.Subject.Type, t.Base, what)
					}
					if d.Kind == qdl.RefQualifier && d.Subject.Classifier == qdl.ClassVar && (!top || !isVariable) {
						en.errorf(pos, "annotation", "qualifier %s applies only to variables (%s)", q, what)
					}
				}
				walk(t.Base, false)
			case cminor.PointerType:
				walk(t.Elem, false)
			case cminor.ArrayType:
				walk(t.Elem, false)
			}
		}
		walk(t, true)
	}
	for _, g := range en.prog.Globals {
		checkType(g.Pos, g.Type, true, "global "+g.Name)
	}
	for _, st := range en.prog.Structs {
		for _, f := range st.Fields {
			checkType(f.Pos, f.Type, false, "field "+st.Name+"."+f.Name)
		}
	}
	for _, f := range en.prog.Funcs {
		checkType(f.Pos, f.Result, false, "result of "+f.Name)
		for _, p := range f.Params {
			checkType(p.Pos, p.Type, true, "parameter "+p.Name)
		}
		if f.Body != nil {
			cminor.WalkStmt(f.Body, cminor.Visitor{Decl: func(d *cminor.VarDecl) {
				checkType(d.Pos, d.Type, true, "local "+d.Name)
			}})
		}
	}
}

// ---- Main checking pass ----

// preFuncPasses runs the program-level passes that precede the function-body
// walks: restrict-clause precomputation and global-initializer checking.
// Diagnostics emitted here land before any function's in en.diags, matching
// source order.
func (en *engine) preFuncPasses() {
	// Precompute restrict clauses; they are applied to every expression and
	// dereference during the statement walks.
	for _, d := range en.reg.Defs() {
		for _, cl := range d.Restricts {
			if _, ok := cl.Pat.(qdl.PDeref); ok {
				en.rDerefClauses = append(en.rDerefClauses, rclause{d, cl})
			} else {
				en.rExprClauses = append(en.rExprClauses, rclause{d, cl})
			}
		}
	}
	for _, g := range en.prog.Globals {
		if g.Init != nil {
			en.visitExprTree(g.Init)
			en.checkAssignTo(g.Pos, g.Type, g.Init, func() string { return "initialization of " + g.Name })
		}
	}
}

// checkFunc checks one function body under a fresh refinement environment.
func (en *engine) checkFunc(f *cminor.FuncDef) {
	if f.Body == nil {
		return
	}
	en.curFn = f
	en.env = refEnv{}
	en.checkStmt(f.Body)
	en.curFn = nil
}

// CheckFuncHook, when non-nil, runs on the walking goroutine before every
// function-body walk. Tests (including cross-package server tests) use it to
// inject faults or to hold a FuncCache flight open while concurrent lookups
// coalesce behind the leader. Production code leaves it nil.
var CheckFuncHook func(f *cminor.FuncDef)

// fpCheckWalk injects faults into the body walk; see internal/faults. Panics
// are contained by safeCheckFunc's recovery, errors degrade to an "internal"
// diagnostic — both transient, so entryFromWalk refuses to cache them.
var fpCheckWalk = faults.Register("checker.walk")

// safeCheckFunc walks one function body, converting a panic anywhere in the
// walk into an "internal" diagnostic on that function, so one pathological
// body cannot take down the whole check (or leak a pool worker).
func (en *engine) safeCheckFunc(f *cminor.FuncDef) {
	defer func() {
		if r := recover(); r != nil {
			en.errorf(f.Pos, "internal", "checker panic in function %s: %v", f.Name, r)
		}
	}()
	if CheckFuncHook != nil {
		CheckFuncHook(f)
	}
	if err := fpCheckWalk.Fire(); err != nil {
		en.errorf(f.Pos, "internal", "checker fault in function %s: %v", f.Name, err)
		return
	}
	en.checkFunc(f)
}

// checkFuncs checks every function, fanning the bodies out over a bounded
// worker pool. Functions are independent: the only engine state a body walk
// touches is its own diagnostics, restrict counters, derivation memo, and
// refinement environment, so each worker gets a private child engine sharing
// the immutable registry/type-info/clause tables, and the children's
// diagnostics are merged back in source (declaration) order — the result is
// byte-identical to the serial walk. A canceled context stops handing out
// functions; bodies not walked report nothing (Result.Err marks the run
// inconclusive).
func (en *engine) checkFuncs(ctx context.Context, workers int) {
	funcs := en.prog.Funcs
	if workers > len(funcs) {
		workers = len(funcs)
	}
	if workers <= 1 {
		for _, f := range funcs {
			if ctx.Err() != nil {
				return
			}
			if en.fc == nil {
				en.safeCheckFunc(f)
				continue
			}
			// With a function cache, the serial path also walks each body on
			// a private child engine so the cache entry captures exactly one
			// function's contribution.
			child := en.childEngine()
			child.checkFuncCached(f)
			en.mergeChild(child)
		}
		return
	}
	children := make([]*engine, len(funcs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				child := en.childEngine()
				child.checkFuncCached(funcs[i])
				children[i] = child
			}
		}()
	}
	for i := range funcs {
		if ctx.Err() != nil {
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, child := range children {
		if child == nil {
			continue
		}
		en.mergeChild(child)
	}
}

// mergeChild folds one function's child-engine state back into the parent,
// preserving source (declaration) order when called in function order.
func (en *engine) mergeChild(child *engine) {
	en.diags = append(en.diags, child.diags...)
	en.stats.RestrictChecks += child.stats.RestrictChecks
	en.stats.RestrictFailures += child.stats.RestrictFailures
	en.stats.MemoHits += child.stats.MemoHits
	en.stats.MemoMisses += child.stats.MemoMisses
	en.stats.FuncCacheHits += child.stats.FuncCacheHits
	en.stats.FuncCacheMisses += child.stats.FuncCacheMisses
	en.stats.FuncCacheCoalesced += child.stats.FuncCacheCoalesced
}

// childEngine clones the engine for one worker: immutable tables (registry,
// type info, clause lists, flow precomputation) are shared; diagnostic,
// statistic, memo, and environment state is private.
func (en *engine) childEngine() *engine {
	return &engine{
		reg:           en.reg,
		info:          en.info,
		prog:          en.prog,
		memo:          map[cminor.Expr]map[string]bool{},
		flow:          en.flow,
		env:           refEnv{},
		addrTaken:     en.addrTaken,
		globalNames:   en.globalNames,
		rExprClauses:  en.rExprClauses,
		rDerefClauses: en.rDerefClauses,
		deriveReady:   en.deriveReady,
		valueDefs:     en.valueDefs,
		defCurDep:     en.defCurDep,
		fc:            en.fc,
		ctxKey:        en.ctxKey,
		ctx:           en.ctx,
	}
}

// checkStmt checks one statement under the current refinement environment,
// leaving en.env updated with the statement's kills (but not with inner
// branches' refinements).
func (en *engine) checkStmt(s cminor.Stmt) {
	switch s := s.(type) {
	case *cminor.Block:
		for _, inner := range s.Stmts {
			en.checkStmt(inner)
		}
	case *cminor.DeclStmt:
		if s.Decl.Init != nil {
			en.visitExprTree(s.Decl.Init)
			en.checkAssignTo(s.Pos, s.Decl.Type, s.Decl.Init, func() string { return "initialization of " + s.Decl.Name })
		}
		delete(en.env, s.Decl.Name) // a fresh declaration shadows refinements
	case *cminor.InstrStmt:
		en.checkInstr(s.Instr)
		if en.flow {
			en.env = en.applyKills(en.env, collectKills(s, en.info))
		}
	case *cminor.If:
		en.visitExprTree(s.Cond)
		saved := en.env
		if en.flow {
			en.env = saved.merge(en.refinementsFromCond(s.Cond, false))
		}
		en.checkStmt(s.Then)
		var thenKills, elseKills map[string]bool
		if en.flow {
			thenKills = collectKills(s.Then, en.info)
		}
		if s.Else != nil {
			en.env = saved
			if en.flow {
				en.env = saved.merge(en.refinementsFromCond(s.Cond, true))
			}
			en.checkStmt(s.Else)
			if en.flow {
				elseKills = collectKills(s.Else, en.info)
			}
		}
		after := saved
		// Early-exit refinement: when the then-branch never falls through,
		// the code after the if runs only under the negated condition.
		if en.flow && s.Else == nil && terminates(s.Then) {
			after = saved.merge(en.refinementsFromCond(s.Cond, true))
		}
		if en.flow {
			after = en.applyKills(en.applyKills(after, thenKills), elseKills)
		}
		en.env = after
	case *cminor.While:
		// Loop bodies run after arbitrary iterations: check cond and body
		// under the environment weakened by everything the body may kill.
		if en.flow {
			en.env = en.applyKills(en.env, collectKills(s.Body, en.info))
		}
		en.visitExprTree(s.Cond)
		en.checkStmt(s.Body)
	case *cminor.For:
		if s.Init != nil {
			en.checkStmt(s.Init)
		}
		if en.flow {
			kills := collectKills(s.Body, en.info)
			if s.Post != nil {
				for k, v := range collectKills(s.Post, en.info) {
					if v {
						kills[k] = true
					}
				}
			}
			en.env = en.applyKills(en.env, kills)
		}
		if s.Cond != nil {
			en.visitExprTree(s.Cond)
		}
		if s.Post != nil {
			en.checkStmt(s.Post)
		}
		en.checkStmt(s.Body)
	case *cminor.Return:
		if s.X != nil {
			en.visitExprTree(s.X)
		}
		if s.X != nil && en.curFn != nil {
			// Ownership transfer (the fresh extension): returning a
			// ref-qualified local whose qualifier has a fresh assign rule
			// is the sanctioned way to move a unique reference out, so the
			// disallow-refer check does not apply to it (the rest of the
			// assignment checks still do).
			skipDisallow := false
			if lve, ok := s.X.(*cminor.LVExpr); ok && en.freshTransferReturn(lve) {
				skipDisallow = true
			}
			en.checkAssignToWith(s.Pos, en.curFn.Result, s.X, func() string { return "return from " + en.curFn.Name }, skipDisallow)
		}
	}
}

// visitExprTree applies the restrict rules to every expression and
// dereference in e, under the current refinement environment.
func (en *engine) visitExprTree(e cminor.Expr) {
	cminor.WalkExpr(e, cminor.Visitor{
		Expr:   en.restrictExpr,
		LValue: en.restrictLValue,
	})
}

// visitLValueTree applies the restrict rules inside an l-value (assignment
// targets contain expressions too: indices and deref addresses).
func (en *engine) visitLValueTree(lv cminor.LValue) {
	cminor.WalkLValue(lv, cminor.Visitor{
		Expr:   en.restrictExpr,
		LValue: en.restrictLValue,
	})
}

func (en *engine) restrictExpr(e cminor.Expr) {
	if _, ok := e.(*cminor.LVExpr); ok {
		return // l-values are matched via restrictLValue
	}
	for _, rc := range en.rExprClauses {
		b := newBindings()
		if !en.matchPattern(rc.def, rc.cl, rc.cl.Pat, e, b) {
			continue
		}
		en.stats.RestrictChecks++
		if rc.cl.Where != nil && !en.evalWhere(rc.cl.Where, b, nil, nil) {
			en.stats.RestrictFailures++
			en.errorf(e.Position(), "restrict", "%s violates qualifier %s's restrict rule: %s",
				cminor.ExprString(e), rc.def.Name, rc.cl)
		}
	}
}

func (en *engine) restrictLValue(lv cminor.LValue) {
	dlv, ok := lv.(*cminor.DerefLV)
	if !ok {
		return
	}
	for _, rc := range en.rDerefClauses {
		pat := rc.cl.Pat.(qdl.PDeref)
		vp, ok := declOf(rc.def, rc.cl, pat.Name)
		if !ok {
			continue
		}
		b := newBindings()
		if !en.bindExpr(vp, dlv.Addr, b) {
			continue
		}
		en.stats.RestrictChecks++
		if rc.cl.Where != nil && !en.evalWhere(rc.cl.Where, b, nil, nil) {
			en.stats.RestrictFailures++
			en.errorf(dlv.Pos, "restrict", "dereference of %s violates qualifier %s's restrict rule: %s",
				cminor.ExprString(dlv.Addr), rc.def.Name, rc.cl)
		}
	}
}

func (en *engine) checkInstr(in cminor.Instr) {
	switch in := in.(type) {
	case *cminor.Assign:
		en.visitLValueTree(in.LHS)
		en.visitExprTree(in.RHS)
		lt := en.info.LVTypeOf(in.LHS)
		en.checkNoAssign(in.Pos, lt, in.LHS)
		en.checkAssignTo(in.Pos, lt, in.RHS, func() string { return "assignment to " + cminor.LValueString(in.LHS) })
	case *cminor.CallInstr:
		if in.LHS != nil {
			en.visitLValueTree(in.LHS)
		}
		for _, a := range in.Args {
			en.visitExprTree(a)
		}
		fn, ok := en.info.Funcs[in.Fn]
		if !ok {
			return // base diagnostics already cover it
		}
		sig := fn.Signature()
		for i, a := range in.Args {
			if i < len(sig.Params) {
				en.checkAssignTo(a.Position(), sig.Params[i], a,
					func() string { return fmt.Sprintf("argument %d of %s", i+1, in.Fn) })
			} else {
				// Variadic arguments still may not leak disallowed values.
				en.disallowValueFlow(a, true)
			}
		}
		if in.LHS != nil {
			en.checkCallResult(in, sig.Result)
		}
	}
}

// checkNoAssign flags assignments to l-values carrying a noassign
// reference qualifier (the const-style extension): their value is fixed at
// declaration.
func (en *engine) checkNoAssign(pos cminor.Pos, lt cminor.Type, lhs cminor.LValue) {
	for _, q := range en.refQualsOf(lt) {
		if en.reg.Lookup(q).NoAssign {
			en.errorf(pos, "assign", "%s l-value %s may not be assigned after its declaration",
				q, cminor.LValueString(lhs))
		}
	}
}

// checkCallResult checks the implicit assignment of a call's result to its
// destination l-value.
func (en *engine) checkCallResult(in *cminor.CallInstr, resultType cminor.Type) {
	lt := en.info.LVTypeOf(in.LHS)
	en.checkNoAssign(in.Pos, lt, in.LHS)
	// Reference qualifiers with assign rules: a call result matches no
	// syntactic pattern (the paper's section 6.2 hits exactly this for
	// dfa's initialization) — unless a "fresh" assign clause is present and
	// the callee provably returns a fresh reference (the section 2.2.1
	// extension).
	for _, q := range en.refQualsOf(lt) {
		d := en.reg.Lookup(q)
		if len(d.Assigns) == 0 {
			continue
		}
		ok := false
		for _, cl := range d.Assigns {
			if _, isFresh := cl.Pat.(qdl.PFresh); isFresh && en.returnsFresh(in.Fn, q) {
				ok = true
			}
		}
		if !ok {
			en.errorf(in.Pos, "assign",
				"cannot validate assignment of %s's result to %s l-value %s: no assign rule matches a call result",
				in.Fn, q, cminor.LValueString(in.LHS))
		}
	}
	// Value qualifiers: the declared result type must carry them.
	resultQuals := map[string]bool{}
	for _, q := range en.valueQualsOf(resultType) {
		resultQuals[q] = true
	}
	for _, q := range en.valueQualsOf(lt) {
		if !resultQuals[q] {
			en.errorf(in.Pos, "qual",
				"result of %s (type %s) lacks qualifier %s required by %s",
				in.Fn, resultType, q, cminor.LValueString(in.LHS))
		}
	}
	en.checkDeepTypes(in.Pos, lt, resultType, func() string { return "result of " + in.Fn })
}

// freshTransferReturn reports whether the returned l-value is a
// ref-qualified local of a qualifier that declares a fresh assign rule.
func (en *engine) freshTransferReturn(lve *cminor.LVExpr) bool {
	v, ok := lve.LV.(*cminor.VarLV)
	if !ok {
		return false
	}
	def := en.info.VarDefs[v]
	if def == nil || def.Kind != cminor.LocalVar {
		return false
	}
	for _, q := range en.refQualsOf(def.Type) {
		for _, cl := range en.reg.Lookup(q).Assigns {
			if _, isFresh := cl.Pat.(qdl.PFresh); isFresh {
				return true
			}
		}
	}
	return false
}

// returnsFresh reports whether every return of fn yields a fresh reference
// for qualifier q: a q-qualified LOCAL variable (whose invariant holds and
// whose stack cell — the only permitted reference — dies at the return), or
// transitively the result of another fresh-returning call bound to such a
// local. Parameters and globals do not qualify: their cells outlive the
// call.
func (en *engine) returnsFresh(fnName, q string) bool {
	key := fnName + "|" + q
	if v, ok := en.freshMemo[key]; ok {
		return v
	}
	if en.freshMemo == nil {
		en.freshMemo = map[string]bool{}
	}
	en.freshMemo[key] = false // pin recursive calls false
	fn, ok := en.info.Funcs[fnName]
	if !ok || fn.Body == nil {
		return false
	}
	sawReturn := false
	fresh := true
	cminor.WalkStmt(fn.Body, cminor.Visitor{Stmt: func(s cminor.Stmt) {
		ret, isRet := s.(*cminor.Return)
		if !isRet || ret.X == nil {
			return
		}
		sawReturn = true
		lve, isLV := ret.X.(*cminor.LVExpr)
		if !isLV {
			fresh = false
			return
		}
		v, isVar := lve.LV.(*cminor.VarLV)
		if !isVar {
			fresh = false
			return
		}
		def := en.info.VarDefs[v]
		if def == nil || def.Kind != cminor.LocalVar || !cminor.HasQual(def.Type, q) {
			fresh = false
		}
	}})
	result := sawReturn && fresh
	en.freshMemo[key] = result
	return result
}

// checkAssignTo checks an explicit or implicit assignment of rhs into a
// location of declared type dst. what describes the assignment for
// diagnostics; it is a thunk so the common no-diagnostic path never builds
// the string.
func (en *engine) checkAssignTo(pos cminor.Pos, dst cminor.Type, rhs cminor.Expr, what func() string) {
	en.checkAssignToWith(pos, dst, rhs, what, false)
}

// checkAssignToWith is checkAssignTo with the disallow flow check optionally
// skipped (fresh ownership-transfer returns).
func (en *engine) checkAssignToWith(pos cminor.Pos, dst cminor.Type, rhs cminor.Expr, what func() string, skipDisallow bool) {
	// Reference qualifiers on the destination: the right-hand side must
	// match one of the qualifier's assign clauses (when it declares any).
	for _, q := range en.refQualsOf(dst) {
		d := en.reg.Lookup(q)
		if len(d.Assigns) == 0 {
			continue // ondecl-style qualifiers accept any type-correct value
		}
		if !en.matchesAssignClauses(d, dst, rhs) {
			en.errorf(pos, "assign", "%s: right-hand side %s matches no assign rule of qualifier %s",
				what(), cminor.ExprString(rhs), q)
		}
	}
	// Value qualifiers on the destination: derivable on the right-hand side
	// (implicit subtyping lets extra qualifiers on rhs be dropped).
	set := en.qualSet(rhs)
	for _, q := range en.valueQualsOf(dst) {
		if !set[q] {
			en.errorf(pos, "qual", "%s: %s cannot be given qualifier %s (a cast would insert a run-time check)",
				what(), cminor.ExprString(rhs), q)
		}
	}
	// Deeper qualifiers admit no subtyping (section 2.1.2).
	en.checkDeepTypes(pos, dst, en.rTypeOf(rhs), what)
	// Disallow rules on the flowing value.
	if !skipDisallow {
		en.disallowValueFlow(rhs, true)
	}
}

// rTypeOf returns the r-type of an expression: its recorded type with
// top-level reference qualifiers stripped.
func (en *engine) rTypeOf(e cminor.Expr) cminor.Type {
	t := en.info.TypeOf(e)
	return cminor.WithoutQuals(t, en.refQualsOf(t))
}

// checkDeepTypes enforces invariance of qualifiers below the top level:
// int pos* is neither a subtype nor a supertype of int*.
func (en *engine) checkDeepTypes(pos cminor.Pos, dst, src cminor.Type, what func() string) {
	if isNullish(src) {
		return
	}
	dp, dok := cminor.PointeeOf(cminor.Decay(dst))
	sp, sok := cminor.PointeeOf(cminor.Decay(src))
	if !dok || !sok {
		return
	}
	// void* on either side converts freely (C compatibility; malloc).
	if _, ok := cminor.StripQuals(dp).(cminor.VoidType); ok {
		return
	}
	if _, ok := cminor.StripQuals(sp).(cminor.VoidType); ok {
		return
	}
	if !cminor.TypeEqual(cminor.Decay(dp), cminor.Decay(sp)) {
		en.errorf(pos, "qual", "%s: pointee types %s and %s must agree exactly (no subtyping under pointers)",
			what(), dp, sp)
	}
}

func isNullish(t cminor.Type) bool {
	pt, ok := cminor.StripQuals(t).(cminor.PointerType)
	if !ok {
		return false
	}
	_, isVoid := cminor.StripQuals(pt.Elem).(cminor.VoidType)
	return isVoid
}

// matchesAssignClauses reports whether rhs matches one of d's assign rules
// for a destination of type dst.
func (en *engine) matchesAssignClauses(d *qdl.Def, dst cminor.Type, rhs cminor.Expr) bool {
	for _, cl := range d.Assigns {
		b := newBindings()
		if !en.matchTypePat(d.Subject.Type, dst, b) {
			continue
		}
		if !en.matchPattern(d, cl, cl.Pat, rhs, b) {
			continue
		}
		if cl.Where != nil && !en.evalWhere(cl.Where, b, rhs, map[string]bool{}) {
			continue
		}
		return true
	}
	return false
}

// ---- Disallow enforcement ----

// disallowValueFlow flags occurrences of disallow-refer qualified l-values
// whose value flows into the assigned value. Occurrences consumed as a
// dereference address do not copy the value and are allowed ("a unique
// l-value may still be dereferenced", section 2.2.1).
func (en *engine) disallowValueFlow(e cminor.Expr, valuePos bool) {
	switch e := e.(type) {
	case *cminor.LVExpr:
		if valuePos {
			for _, q := range en.refQualsOf(en.info.LVTypeOf(e.LV)) {
				if en.reg.Lookup(q).Disallow.Refer {
					en.errorf(e.Pos, "disallow", "%s l-value %s may not be referred to here",
						q, cminor.LValueString(e.LV))
				}
			}
		}
		en.disallowAddrWalk(e.LV)
	case *cminor.AddrOf:
		// &*p evaluates to p's value; &x/&x.f are handled by the global
		// address-of pass.
		if d, ok := e.LV.(*cminor.DerefLV); ok {
			en.disallowValueFlow(d.Addr, valuePos)
		}
	case *cminor.Unop:
		en.disallowValueFlow(e.X, valuePos)
	case *cminor.Binop:
		en.disallowValueFlow(e.L, valuePos)
		en.disallowValueFlow(e.R, valuePos)
	case *cminor.Cast:
		en.disallowValueFlow(e.X, valuePos)
	case *cminor.NewExpr:
		en.disallowValueFlow(e.Size, false)
	}
}

// disallowAddrWalk descends into the address computations of an l-value;
// values read there are addresses, not copies.
func (en *engine) disallowAddrWalk(lv cminor.LValue) {
	switch lv := lv.(type) {
	case *cminor.DerefLV:
		en.disallowValueFlow(lv.Addr, false)
	case *cminor.FieldLV:
		en.disallowAddrWalk(lv.Base)
	}
}

// addrOfPass flags taking the address of reference-qualified l-values. For
// qualifiers with "disallow &X" this is their declared rule; for all other
// reference qualifiers it is the frame condition our preservation
// obligations assume (see DESIGN.md): no pointer to a reference-qualified
// l-value may be created.
func (en *engine) addrOfPass() {
	cminor.Walk(en.prog, cminor.Visitor{Expr: func(e cminor.Expr) {
		ao, ok := e.(*cminor.AddrOf)
		if !ok {
			return
		}
		if _, isDeref := ao.LV.(*cminor.DerefLV); isDeref {
			return // &*p is p, not an address-of
		}
		for _, q := range en.refQualsOf(en.info.LVTypeOf(ao.LV)) {
			d := en.reg.Lookup(q)
			why := "the frame condition for reference qualifiers"
			if d.Disallow.AddrOf {
				why = "its disallow clause"
			}
			en.errorf(ao.Pos, "addrof", "cannot take the address of %s l-value %s (%s)",
				q, cminor.LValueString(ao.LV), why)
		}
	}})
}

package checker

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cachedisk"
)

// Disk and peer tiers for the function-result cache. The inner payload codec
// mirrors the prover's (simplify/persist.go): cachedisk's record framing
// supplies the key binding and checksum, this codec supplies the entry
// layout, and the PR 4 content seal — persisted alongside the payload and
// recomputed over the decoded entry on every load — supplies the semantic
// integrity check. A record whose recomputed seal disagrees with its stored
// seal is rejected and evicted no matter how clean its checksums were: the
// seal attests to what the walk produced, not to what the disk stored.
//
// Trust model: seal and checksums are plain FNV-64a — recomputable by any
// writer — so they detect corruption (bit rot, torn writes, stale formats),
// NOT deliberate tampering. Unlike prover outcomes, a function entry
// carries no certificate to replay, so an entry is only as trustworthy as
// its source: the local disk (same trust domain as the process), or a peer
// that authenticated itself with the shared fleet secret — the server layer
// HMACs every served record and only wires the func-namespace peer fetch
// when a secret is configured (server.Config.CacheSecret).
const (
	funcEntryMagic   = "QFE"
	funcEntryVersion = byte(1)
	// maxPersistDiags bounds the decoded diagnostic count so a hostile
	// record cannot demand a giant allocation.
	maxPersistDiags = 1 << 16
)

// encodeFuncEntry serializes an entry's replayable payload plus its content
// seal. The key is not encoded — cachedisk's record framing binds it.
func encodeFuncEntry(e *funcCacheEntry) []byte {
	b := make([]byte, 0, 64)
	b = append(b, funcEntryMagic...)
	b = append(b, funcEntryVersion)
	b = binary.AppendUvarint(b, uint64(e.restrictChecks))
	b = binary.AppendUvarint(b, uint64(e.restrictFailures))
	b = binary.AppendUvarint(b, uint64(e.memoHits))
	b = binary.AppendUvarint(b, uint64(e.memoMisses))
	b = binary.AppendUvarint(b, uint64(len(e.diags)))
	for _, d := range e.diags {
		b = binary.AppendUvarint(b, uint64(d.relLine))
		b = binary.AppendUvarint(b, uint64(d.col))
		b = appendFuncString(b, d.code)
		b = appendFuncString(b, d.msg)
	}
	return binary.BigEndian.AppendUint64(b, e.seal)
}

// decodeFuncEntry is encodeFuncEntry's inverse. Beyond framing, it verifies
// the content seal: sealEntry over the decoded fields must reproduce the
// stored seal exactly, so any accidental mutation that survives the outer
// checksums (or a record minted by a buggy writer) is refused. The seal is
// not authentication — a deliberate forger recomputes it trivially; keeping
// forgers out of the fetch path is the transport's job (see the package
// comment's trust model).
func decodeFuncEntry(data []byte) (*funcCacheEntry, error) {
	if len(data) < len(funcEntryMagic)+1+8 {
		return nil, fmt.Errorf("short function-entry payload")
	}
	if string(data[:len(funcEntryMagic)]) != funcEntryMagic {
		return nil, fmt.Errorf("bad function-entry magic")
	}
	if v := data[len(funcEntryMagic)]; v != funcEntryVersion {
		return nil, fmt.Errorf("stale function-entry version %d", v)
	}
	storedSeal := binary.BigEndian.Uint64(data[len(data)-8:])
	d := funcDecoder{buf: data[len(funcEntryMagic)+1 : len(data)-8]}
	e := &funcCacheEntry{
		restrictChecks:   int(d.uvarint()),
		restrictFailures: int(d.uvarint()),
		memoHits:         int(d.uvarint()),
		memoMisses:       int(d.uvarint()),
	}
	n := d.uvarint()
	if n > maxPersistDiags {
		return nil, fmt.Errorf("diagnostic list too long (%d)", n)
	}
	e.diags = make([]relDiag, 0, min(int(n), 256))
	for i := uint64(0); i < n && d.err == nil; i++ {
		e.diags = append(e.diags, relDiag{
			relLine: int(d.uvarint()),
			col:     int(d.uvarint()),
			code:    d.string(),
			msg:     d.string(),
		})
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%d trailing bytes", len(d.buf))
	}
	// A persisted entry must never replay a transient walk.
	for _, dg := range e.diags {
		if dg.code == "internal" {
			return nil, fmt.Errorf("transient %q diagnostic in persisted entry", dg.code)
		}
	}
	if got := sealEntry(e); got != storedSeal {
		return nil, fmt.Errorf("content seal mismatch (stored %x, recomputed %x)", storedSeal, got)
	}
	e.seal = storedSeal
	return e, nil
}

func appendFuncString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// funcDecoder is a bounds-checked cursor with sticky error state.
type funcDecoder struct {
	buf []byte
	err error
}

func (d *funcDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated function-entry payload")
	}
}

func (d *funcDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *funcDecoder) string() string {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

// PeerFetch fetches the sealed cachedisk record for a cache key from the
// peer tier (ok=false on miss or total peer failure — any failure is just a
// miss). Supplied by the server package so the checker never sees the
// network.
type PeerFetch func(key string) (sealed []byte, ok bool)

// WithDisk attaches a disk tier: leader fills probe store before walking,
// and every stored entry is persisted. Attach before sharing the cache
// across goroutines. A nil store is a no-op.
func (c *FuncCache) WithDisk(store *cachedisk.Store) *FuncCache {
	c.disk = store
	return c
}

// WithPeerFetch attaches a peer tier consulted when the disk tier misses.
// Attach before sharing the cache across goroutines.
func (c *FuncCache) WithPeerFetch(fetch PeerFetch) *FuncCache {
	c.peerFetch = fetch
	return c
}

// DiskStats snapshots the attached disk store's counters (zero value when
// none is attached).
func (c *FuncCache) DiskStats() cachedisk.Stats {
	return c.disk.Stats()
}

// externalLookup probes the disk then the peer tier for key. It runs on the
// singleflight leader path only — waiters coalesce behind it exactly as they
// do behind a walk — and outside the cache lock (disk and network I/O).
// Verified entries are admitted to memory (and peer fetches written through
// to disk); anything unverifiable is evicted at its source of truth and
// counted, then reported as a miss so the leader walks fresh.
func (c *FuncCache) externalLookup(key string) *funcCacheEntry {
	if c.disk == nil && c.peerFetch == nil {
		return nil
	}
	if payload, ok := c.disk.Get(key); ok {
		e, err := decodeFuncEntry(payload)
		if err != nil {
			// Checksum-clean record, rotten payload: evict at the disk
			// layer and count the rejection, same as a memory seal failure.
			c.disk.Delete(key)
			c.rejected.Add(1)
		} else {
			c.diskHits.Add(1)
			c.put(key, e)
			return e
		}
	}
	if c.peerFetch == nil {
		return nil
	}
	sealed, ok := c.peerFetch(key)
	if !ok {
		return nil
	}
	payload, err := cachedisk.Unseal(sealed, key)
	if err != nil {
		c.peerRejects.Add(1)
		return nil
	}
	e, err := decodeFuncEntry(payload)
	if err != nil {
		c.peerRejects.Add(1)
		return nil
	}
	c.peerHits.Add(1)
	c.put(key, e)
	c.disk.Put(key, encodeFuncEntry(e))
	return e
}

// persist writes a freshly-filled entry through to the disk tier.
func (c *FuncCache) persist(key string, e *funcCacheEntry) {
	if c.disk == nil {
		return
	}
	c.disk.Put(key, encodeFuncEntry(e))
}

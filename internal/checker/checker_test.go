package checker

import (
	"strings"
	"testing"

	"repro/internal/cminor"
	"repro/internal/qdl"
	"repro/internal/quals"
)

func run(t *testing.T, src string) *Result {
	t.Helper()
	reg := quals.MustStandard()
	prog, err := cminor.Parse("test.c", src, reg.Names())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog, reg)
}

func runWith(t *testing.T, reg *qdl.Registry, src string) *Result {
	t.Helper()
	prog, err := cminor.Parse("test.c", src, reg.Names())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog, reg)
}

// refRegistry loads only the reference qualifiers, as the paper's section
// 6.2 experiment does (nonnull's program-wide dereference restrict would
// otherwise demand annotations unrelated to the uniqueness checks).
func refRegistry(t *testing.T) *qdl.Registry {
	t.Helper()
	reg, err := qdl.Load(map[string]string{
		"unique.qdl":    quals.Unique,
		"unaliased.qdl": quals.Unaliased,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func wantNoDiags(t *testing.T, r *Result) {
	t.Helper()
	for _, d := range r.Diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func wantDiag(t *testing.T, r *Result, code, substr string) {
	t.Helper()
	for _, d := range r.Diags {
		if d.Code == code && strings.Contains(d.Msg, substr) {
			return
		}
	}
	t.Errorf("no [%s] diagnostic containing %q; got %v", code, substr, r.Diags)
}

const lcmSrc = `
int pos gcd(int pos n, int pos m);
int pos lcm(int pos a, int pos b) {
  int pos d;
  d = gcd(a, b);
  int pos prod = a * b;
  return (int pos) (prod / d);
}
`

func TestLcmChecksCleanly(t *testing.T) {
	// Figure 2: with the cast, lcm typechecks with no warnings.
	r := run(t, lcmSrc)
	wantNoDiags(t, r)
	if len(r.Casts) != 1 {
		t.Errorf("got %d value-qualified casts, want 1", len(r.Casts))
	}
}

func TestLcmWithoutCastFails(t *testing.T) {
	// The type rules for pos cannot derive int pos for prod/d; without the
	// cast the return fails (section 2.1.1).
	r := run(t, `
int pos gcd(int pos n, int pos m);
int pos lcm(int pos a, int pos b) {
  int pos d;
  d = gcd(a, b);
  int pos prod = a * b;
  return prod / d;
}
`)
	wantDiag(t, r, "qual", "pos")
}

func TestValueQualifierSubtyping(t *testing.T) {
	// tau q <= tau: int pos flows to int (section 2.1.2).
	r := run(t, `
void f() {
  int pos x = 3;
  int y = x;
}
`)
	wantNoDiags(t, r)
}

func TestNoSubtypingUnderPointers(t *testing.T) {
	// The unsound example of section 2.1.2: int pos* is not int*.
	r := run(t, `
void f() {
  int pos x = 3;
  int* p = &x;
  *p = -1;
}
`)
	wantDiag(t, r, "qual", "pointee types")
}

func TestConstantRules(t *testing.T) {
	r := run(t, `
void f() {
  int pos a = 5;
  int neg b = -7;
  int nonzero c = -3;
  int nonzero d = 4;
}
`)
	wantNoDiags(t, r)
	r2 := run(t, `void f() { int pos a = 0; }`)
	wantDiag(t, r2, "qual", "pos")
	r3 := run(t, `void f() { int nonzero c = 0; }`)
	wantDiag(t, r3, "qual", "nonzero")
}

func TestRecursiveCaseRules(t *testing.T) {
	// pos via multiplication and mutual recursion with neg via negation.
	r := run(t, `
void f(int pos a, int pos b, int neg c) {
  int pos m = a * b;
  int pos n = -c;
  int neg o = -m;
  int pos s = a + b;
}
`)
	wantNoDiags(t, r)
}

func TestPosSubtractionNotDerivable(t *testing.T) {
	r := run(t, `
void f(int pos a, int pos b) {
  int pos d = a - b;
}
`)
	wantDiag(t, r, "qual", "pos")
}

func TestNonzeroRestrictDivision(t *testing.T) {
	// Divisions require nonzero denominators; pos implies nonzero via the
	// case rule that encodes the subtype relationship (section 2.1.2).
	r := run(t, `
int f(int x, int pos d) {
  return x / d;
}
`)
	wantNoDiags(t, r)
	r2 := run(t, `
int f(int x, int d) {
  return x / d;
}
`)
	wantDiag(t, r2, "restrict", "nonzero")
}

func TestNonnullRestrictAndAddressOf(t *testing.T) {
	r := run(t, `
void f() {
  int x = 1;
  int* nonnull p = &x;
  int y = *p;
}
`)
	wantNoDiags(t, r)
	r2 := run(t, `
void f(int* p) {
  int y = *p;
}
`)
	wantDiag(t, r2, "restrict", "nonnull")
}

func TestNonnullPropagatesThroughAnnotatedParams(t *testing.T) {
	r := run(t, `
int deref(int* nonnull p) {
  return *p;
}
void g() {
  int x = 3;
  int r;
  r = deref(&x);
}
`)
	wantNoDiags(t, r)
}

func TestUntaintedFormatStrings(t *testing.T) {
	// Figure 4 usage: an untainted cast is required for the format string;
	// an arbitrary buffer fails.
	r := run(t, `
int printf(char * untainted format, ...);
void f(char* buf) {
  char * untainted fmt = (char * untainted) "%s";
  printf(fmt, buf);
}
`)
	wantNoDiags(t, r)
	r2 := run(t, `
int printf(char * untainted format, ...);
void f(char* buf) {
  printf(buf);
}
`)
	wantDiag(t, r2, "qual", "untainted")
}

func TestUntaintedConstCase(t *testing.T) {
	// Section 6.3: with the constants-are-trusted clause, string literals
	// are untainted without casts.
	reg, err := quals.TaintWithConstants()
	if err != nil {
		t.Fatal(err)
	}
	r := runWith(t, reg, `
int printf(char * untainted format, ...);
void f(int n) {
  printf("%d", n);
}
`)
	wantNoDiags(t, r)
}

func TestTaintedAcceptsAnything(t *testing.T) {
	r := run(t, `
void f(char* buf) {
  char * tainted t = buf;
  char* u = t;
}
`)
	wantNoDiags(t, r)
}

func TestUniqueAssignRules(t *testing.T) {
	// Figure 6: NULL and malloc establish uniqueness.
	r := runWith(t, refRegistry(t), `
int* unique array;
void make_array(int n) {
  array = (int*)malloc(sizeof(int) * n);
  for (int i = 0; i < n; i++) array[i] = i;
  array = NULL;
}
`)
	wantNoDiags(t, r)
}

func TestUniqueDisallowReferral(t *testing.T) {
	// Section 2.2.1: int* q = p violates p's uniqueness.
	r := runWith(t, refRegistry(t), `
void f() {
  int* unique p;
  p = (int*)malloc(sizeof(int));
  int* q = p;
}
`)
	wantDiag(t, r, "disallow", "unique")
}

func TestUniqueDereferenceAllowed(t *testing.T) {
	r := runWith(t, refRegistry(t), `
void f() {
  int* unique p;
  p = (int*)malloc(sizeof(int));
  *p = 4;
  int i = *p;
}
`)
	wantNoDiags(t, r)
}

func TestUniquePassedAsArgumentRejected(t *testing.T) {
	// Section 6.2: passing a unique global to a procedure violates the
	// disallow clause.
	r := runWith(t, refRegistry(t), `
int* unique dfa;
void helper(int* d);
void f() {
  helper(dfa);
}
`)
	wantDiag(t, r, "disallow", "unique")
}

func TestUniqueCallResultRejected(t *testing.T) {
	// Section 6.2: dfa initialized from a procedure result cannot be
	// validated by the assign rules.
	r := runWith(t, refRegistry(t), `
int* parser_result();
int* unique dfa;
void init() {
  dfa = parser_result();
}
`)
	wantDiag(t, r, "assign", "unique")
}

func TestUniqueArbitraryAssignRejected(t *testing.T) {
	r := runWith(t, refRegistry(t), `
void f(int* q) {
  int* unique p;
  p = q;
}
`)
	wantDiag(t, r, "assign", "unique")
}

func TestUniqueAddressOfRejected(t *testing.T) {
	r := runWith(t, refRegistry(t), `
void f() {
  int* unique p;
  p = NULL;
  int** pp = &p;
}
`)
	wantDiag(t, r, "addrof", "unique")
}

func TestUnaliasedOndecl(t *testing.T) {
	r := runWith(t, refRegistry(t), `
void f() {
  int unaliased x = 3;
  x = x + 1;
  int y = x;
}
`)
	wantNoDiags(t, r)
	r2 := run(t, `
void f() {
  int unaliased x = 3;
  int* p = &x;
}
`)
	wantDiag(t, r2, "addrof", "unaliased")
}

func TestAnnotationValidation(t *testing.T) {
	// pos applies to int, not pointers.
	r := run(t, `char* pos s;`)
	wantDiag(t, r, "annotation", "pos")
	// unaliased (Var-classified) cannot annotate struct fields.
	r2 := run(t, `
struct s { int unaliased x; };
`)
	wantDiag(t, r2, "annotation", "unaliased")
}

func TestQualifierOrderIrrelevant(t *testing.T) {
	r := run(t, `
void f(int pos nonzero a, int nonzero pos b) {
  int pos nonzero c = b;
  int nonzero pos d = a;
}
`)
	wantNoDiags(t, r)
}

func TestStatsCounting(t *testing.T) {
	r := run(t, `
int* unique dfa;
void f(int* nonnull p, int n) {
  int x = *p;
  dfa = (int*)malloc(sizeof(int) * n);
  for (int i = 0; i < n; i++) dfa[i] = 0;
  int y = (int pos) 3;
}
`)
	if r.Stats.Dereferences != 2 {
		t.Errorf("dereferences = %d, want 2", r.Stats.Dereferences)
	}
	if r.Stats.Annotations["nonnull"] != 1 || r.Stats.Annotations["unique"] != 1 {
		t.Errorf("annotations = %v", r.Stats.Annotations)
	}
	if r.Stats.QualCasts["pos"] != 1 {
		t.Errorf("casts = %v", r.Stats.QualCasts)
	}
	if r.Stats.RefUses["dfa"] == 0 {
		t.Errorf("ref uses = %v", r.Stats.RefUses)
	}
}

func TestCastCollectionForInstrumentation(t *testing.T) {
	r := run(t, `
void f(int x) {
  int pos p = (int pos) x;
  int* q = (int*) NULL;
}
`)
	// Only the value-qualified cast is collected.
	if len(r.Casts) != 1 {
		t.Fatalf("got %d casts, want 1", len(r.Casts))
	}
	if !cminor.HasQual(r.Casts[0].Type, "pos") {
		t.Errorf("collected cast type = %s", r.Casts[0].Type)
	}
}

func TestFlowInsensitivityRequiresCast(t *testing.T) {
	// The grep idiom from section 6.1: the NULL test does not refine the
	// type, so a cast is needed.
	r := run(t, `
struct dfa_state { int* trans; };
int f(struct dfa_state* nonnull d, int works) {
  int* t;
  t = (d->trans) + works;
  if (t != NULL) {
    return *t;
  }
  return 0;
}
`)
	wantDiag(t, r, "restrict", "nonnull")
	r2 := run(t, `
struct dfa_state { int* trans; };
int f(struct dfa_state* nonnull d, int works) {
  int* nonnull t;
  t = (int* nonnull)((d->trans) + works);
  if (t != NULL) {
    return *t;
  }
  return 0;
}
`)
	wantNoDiags(t, r2)
}

func TestStructFieldQualifiers(t *testing.T) {
	r := run(t, `
struct config { char * untainted fmt; };
int printf(char * untainted format, ...);
void f(struct config* nonnull c) {
  printf(c->fmt);
}
`)
	wantNoDiags(t, r)
}

func TestLogicalMemoryModelQualPropagation(t *testing.T) {
	// Section 3.3: p+i has p's type, so indexing a nonnull array does not
	// produce spurious dereference errors.
	r := run(t, `
int sum(int* nonnull a, int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s += a[i];
  return s;
}
`)
	wantNoDiags(t, r)
}

func TestUserKernelPointerAnalysis(t *testing.T) {
	// The Johnson/Wagner analysis the paper cites (section 2.1.4): a
	// user-space pointer must not be dereferenced in kernel code.
	reg, err := quals.UserKernel()
	if err != nil {
		t.Fatal(err)
	}
	r := runWith(t, reg, `
int syscall_read(int* user ubuf) {
  return *ubuf;
}
`)
	wantDiag(t, r, "restrict", "kernel")
	// The checked copy idiom: a cast models copyin()'s validation.
	r2 := runWith(t, reg, `
int syscall_read(int* user ubuf) {
  int* kernel kbuf;
  kbuf = (int* kernel) ubuf;
  return *kbuf;
}
`)
	wantNoDiags(t, r2)
	// Kernel-space pointers (address-of locals) dereference freely.
	r3 := runWith(t, reg, `
int f() {
  int x = 3;
  int* kernel p = &x;
  return *p;
}
`)
	wantNoDiags(t, r3)
}

func TestNonnegExtraQualifier(t *testing.T) {
	reg, err := quals.WithExtras()
	if err != nil {
		t.Fatal(err)
	}
	r := runWith(t, reg, `
void f(int pos p, int nonneg a, int nonneg b) {
  int nonneg zero = 0;
  int nonneg fromPos = p;
  int nonneg sum = a + b;
  int nonneg prod = a * b;
}
`)
	wantNoDiags(t, r)
	r2 := runWith(t, reg, `
void f(int nonneg a, int nonneg b) {
  int nonneg d = a - b;
}
`)
	wantDiag(t, r2, "qual", "nonneg")
}

func TestBytevalExtraQualifier(t *testing.T) {
	reg, err := quals.WithExtras()
	if err != nil {
		t.Fatal(err)
	}
	r := runWith(t, reg, `
void f() {
  int byteval b = 255;
  int byteval z = 0;
}
`)
	wantNoDiags(t, r)
	r2 := runWith(t, reg, `void f() { int byteval b = 256; }`)
	wantDiag(t, r2, "qual", "byteval")
}

func TestHeaderReplacementPrecedence(t *testing.T) {
	// Section 3.3: annotated library signatures prepended as a header take
	// precedence over the program's own unannotated prototypes, so library
	// calls are checked against the annotated types.
	header := `int printf(char * untainted format, ...);`
	program := `
int printf(char* format, ...);
void f(char* buf) {
  printf(buf);
}
`
	reg, err := quals.TaintWithConstants()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cminor.Parse("prog.c", header+"\n"+program, reg.Names())
	if err != nil {
		t.Fatal(err)
	}
	r := Check(prog, reg)
	wantDiag(t, r, "qual", "untainted")
	// Without the header, the unannotated prototype checks nothing.
	prog2, err := cminor.Parse("prog.c", program, reg.Names())
	if err != nil {
		t.Fatal(err)
	}
	r2 := Check(prog2, reg)
	wantNoDiags(t, r2)
}

func TestConstqQualifier(t *testing.T) {
	// The const-style extension: a constq variable is fixed at declaration.
	reg, err := quals.WithExtras()
	if err != nil {
		t.Fatal(err)
	}
	r := runWith(t, reg, `
void f() {
  int constq limit = 100;
  int x = limit * 2;
}
`)
	wantNoDiags(t, r)
	r2 := runWith(t, reg, `
void f() {
  int constq limit = 100;
  limit = 50;
}
`)
	wantDiag(t, r2, "assign", "constq")
	// Assignment through a call result is also rejected.
	r3 := runWith(t, reg, `
int compute();
void f() {
  int constq limit = 100;
  limit = compute();
}
`)
	wantDiag(t, r3, "assign", "constq")
	// Taking its address is rejected (disallow &X).
	r4 := runWith(t, reg, `
void f() {
  int constq limit = 100;
  int* p = &limit;
}
`)
	wantDiag(t, r4, "addrof", "constq")
}

// freshRegistry loads the fresh-extended unique.
func freshRegistry(t *testing.T) *qdl.Registry {
	t.Helper()
	reg, err := qdl.Load(map[string]string{"unique.qdl": quals.UniqueFresh})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// The section 2.2.1/6.2 wish granted: a unique local returned from a
// procedure is fresh, so dfa = parse_dfa() now validates.
func TestFreshReturnValidatesCallResult(t *testing.T) {
	r := runWith(t, freshRegistry(t), `
struct dfastate { int n; };
struct dfastate* unique dfa;
struct dfastate* parse_dfa() {
  struct dfastate* unique d;
  d = (struct dfastate*)malloc(sizeof(struct dfastate));
  return d;
}
void init() {
  dfa = parse_dfa();
}
`)
	wantNoDiags(t, r)
}

func TestFreshRejectsNonFreshCallee(t *testing.T) {
	// The callee returns a parameter, not a unique local: not fresh.
	r := runWith(t, freshRegistry(t), `
int* identity(int* p) {
  return p;
}
void f(int* q) {
  int* unique u;
  u = identity(q);
}
`)
	wantDiag(t, r, "assign", "unique")
	// A prototype gives no body to analyze: not fresh.
	r2 := runWith(t, freshRegistry(t), `
int* outside();
void f() {
  int* unique u;
  u = outside();
}
`)
	wantDiag(t, r2, "assign", "unique")
	// Returning an unqualified local: not fresh.
	r3 := runWith(t, freshRegistry(t), `
int* make() {
  int* p;
  p = (int*)malloc(sizeof(int));
  return p;
}
void f() {
  int* unique u;
  u = make();
}
`)
	wantDiag(t, r3, "assign", "unique")
}

func TestFreshTransitiveThroughWrapper(t *testing.T) {
	// wrapper() returns a unique local assigned from make(), which itself
	// returns a unique local: freshness chains.
	r := runWith(t, freshRegistry(t), `
int* make() {
  int* unique p;
  p = (int*)malloc(sizeof(int) * 4);
  return p;
}
int* wrapper() {
  int* unique q;
  q = make();
  return q;
}
void f() {
  int* unique u;
  u = wrapper();
}
`)
	wantNoDiags(t, r)
}

func TestFreshRecursiveVacuouslySound(t *testing.T) {
	// A self-recursive "fresh" function is accepted: every value it could
	// return is justified inductively through its unique local, and the
	// only unjustified execution never returns at all (nontermination), so
	// partial correctness holds. The returned local's own assignment is
	// still validated by the normal assign rules.
	r := runWith(t, freshRegistry(t), `
int* loopy() {
  int* unique p;
  p = loopy();
  return p;
}
void f() {
  int* unique u;
  u = loopy();
}
`)
	wantNoDiags(t, r)
	// But a recursive function whose local is NOT unique stays rejected:
	// the inner assignment to the plain local is unrestricted, so nothing
	// justifies freshness.
	r2 := runWith(t, freshRegistry(t), `
int* sneaky(int* q) {
  int* p;
  p = q;
  return p;
}
void f(int* q) {
  int* unique u;
  u = sneaky(q);
}
`)
	wantDiag(t, r2, "assign", "unique")
}

func TestFreshReturnStillChecksValueQuals(t *testing.T) {
	// The ownership-transfer exemption covers only the disallow rule: the
	// result type's value qualifiers are still demanded.
	reg, err := qdl.Load(map[string]string{
		"unique.qdl":  quals.UniqueFresh,
		"nonnull.qdl": quals.Nonnull,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := runWith(t, reg, `
int* nonnull make() {
  int* unique p;
  p = (int*)malloc(sizeof(int));
  return p;
}
`)
	wantDiag(t, r, "qual", "nonnull")
}

package checker

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cachedisk"
	"repro/internal/quals"
)

func TestFuncEntryCodecRoundtrip(t *testing.T) {
	cases := []*funcCacheEntry{
		{},
		{restrictChecks: 3, restrictFailures: 1, memoHits: 10, memoMisses: 2},
		{diags: []relDiag{
			{relLine: 0, col: 3, code: "nonnull", msg: "assignment may store NULL into nonnull g"},
			{relLine: 7, col: 1, code: "tainted", msg: "Δ unicode ok"},
			{relLine: 2, col: 0, code: "", msg: ""},
		}},
	}
	for i, in := range cases {
		in.seal = sealEntry(in)
		got, err := decodeFuncEntry(encodeFuncEntry(in))
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.seal != in.seal ||
			got.restrictChecks != in.restrictChecks || got.restrictFailures != in.restrictFailures ||
			got.memoHits != in.memoHits || got.memoMisses != in.memoMisses ||
			len(got.diags) != len(in.diags) {
			t.Fatalf("case %d: mangled:\n got %+v\nwant %+v", i, got, in)
		}
		for j := range got.diags {
			if got.diags[j] != in.diags[j] {
				t.Errorf("case %d diag %d: %+v != %+v", i, j, got.diags[j], in.diags[j])
			}
		}
	}
}

func TestFuncEntryDecodeRejectsHostileBytes(t *testing.T) {
	e := &funcCacheEntry{
		restrictChecks: 2,
		diags:          []relDiag{{relLine: 1, col: 2, code: "nonnull", msg: "msg"}},
	}
	e.seal = sealEntry(e)
	good := encodeFuncEntry(e)
	reject := func(name string, data []byte) {
		t.Helper()
		if _, err := decodeFuncEntry(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	reject("empty", nil)
	reject("bad magic", append([]byte("XXX"), good[3:]...))
	stale := append([]byte(nil), good...)
	stale[3] = 99
	reject("stale version", stale)
	for cut := 0; cut < len(good); cut += 5 {
		reject("truncated", good[:cut])
	}
	reject("trailing", append(append([]byte(nil), good...), 1))
	// Seal mismatch: flip a payload byte inside the message text. The codec
	// framing still parses; the recomputed seal must not match.
	mut := append([]byte(nil), good...)
	mut[len(mut)-10] ^= 1
	reject("seal mismatch", mut)
	// An entry whose stored seal was forged over a transient "internal"
	// diagnostic must be rejected by the transient gate even with a
	// self-consistent seal.
	tr := &funcCacheEntry{diags: []relDiag{{code: "internal", msg: "recovered panic"}}}
	tr.seal = sealEntry(tr)
	reject("transient diagnostic", encodeFuncEntry(tr))
}

func TestFuncCacheDiskWarmRestart(t *testing.T) {
	reg := quals.MustStandard()
	dir := t.TempDir()

	store, err := cachedisk.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := checkCached(t, reg, cacheSrc, NewFuncCache(0).WithDisk(store))
	if cold.Stats.FuncCacheMisses != 3 {
		t.Fatalf("cold run: %d misses, want 3", cold.Stats.FuncCacheMisses)
	}

	// "Restart": fresh memory cache over the same directory. Every function
	// must be served from disk, and the diagnostics must be identical to an
	// uncached run.
	store2, err := cachedisk.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc2 := NewFuncCache(0).WithDisk(store2)
	warm := checkCached(t, reg, cacheSrc, fc2)
	if warm.Stats.FuncCacheHits != 3 || warm.Stats.FuncCacheMisses != 0 {
		t.Fatalf("warm restart: %d hits / %d misses, want 3 / 0",
			warm.Stats.FuncCacheHits, warm.Stats.FuncCacheMisses)
	}
	st := fc2.Stats()
	if st.DiskHits != 3 {
		t.Fatalf("stats = %+v, want 3 disk hits", st)
	}
	plain := checkCached(t, reg, cacheSrc, nil)
	if got, want := fmt.Sprint(warm.Diags), fmt.Sprint(plain.Diags); got != want {
		t.Fatalf("disk-replayed diags diverge from a fresh check:\n got %s\nwant %s", got, want)
	}
	// Third run: pure memory hits — disk-loaded entries were promoted.
	again := checkCached(t, reg, cacheSrc, fc2)
	if again.Stats.FuncCacheHits != 3 {
		t.Fatalf("post-promotion run: %d hits", again.Stats.FuncCacheHits)
	}
	if st := fc2.Stats(); st.DiskHits != 3 {
		t.Fatalf("promotion re-read the disk: %+v", st)
	}
}

func TestFuncCachePoisonedDiskConverges(t *testing.T) {
	// The acceptance-criteria scenario in miniature: poison every record in
	// the cache dir, cold-restart, and the diagnostics must converge to a
	// fresh run's byte-for-byte, with the poison counted and evicted.
	reg := quals.MustStandard()
	dir := t.TempDir()
	store, _ := cachedisk.Open(dir, 0)
	checkCached(t, reg, cacheSrc, NewFuncCache(0).WithDisk(store))

	files, err := filepath.Glob(filepath.Join(dir, "*.qc"))
	if err != nil || len(files) != 3 {
		t.Fatalf("expected 3 records, found %v (%v)", files, err)
	}
	for i, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0: // torn tail
			data = data[:len(data)/2]
		case 1: // flipped byte mid-record
			data[len(data)/2] ^= 0xff
		case 2: // hostile rewrite: checksum-clean record, garbage payload
			data = cachedisk.Seal("", []byte("attack bytes"))
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	store2, _ := cachedisk.Open(dir, 0)
	fc := NewFuncCache(0).WithDisk(store2)
	warm := checkCached(t, reg, cacheSrc, fc)
	if warm.Stats.FuncCacheHits != 0 || warm.Stats.FuncCacheMisses != 3 {
		t.Fatalf("poisoned restart: %d hits / %d misses, want 0 / 3",
			warm.Stats.FuncCacheHits, warm.Stats.FuncCacheMisses)
	}
	plain := checkCached(t, reg, cacheSrc, nil)
	if got, want := fmt.Sprint(warm.Diags), fmt.Sprint(plain.Diags); got != want {
		t.Fatalf("poisoned-dir diags diverge from fresh:\n got %s\nwant %s", got, want)
	}
	ds := store2.Stats()
	if ds.CorruptEvicted == 0 {
		t.Fatalf("no poison counted: %+v", ds)
	}
	// The re-walks wrote clean records; the next restart is fully warm.
	store3, _ := cachedisk.Open(dir, 0)
	fc3 := NewFuncCache(0).WithDisk(store3)
	healed := checkCached(t, reg, cacheSrc, fc3)
	if healed.Stats.FuncCacheHits != 3 {
		t.Fatalf("healed restart: %d hits, want 3", healed.Stats.FuncCacheHits)
	}
}

func TestFuncCachePeerFetch(t *testing.T) {
	reg := quals.MustStandard()

	// Node A checks the program and keeps its disk store — it will act as
	// the peer's source of sealed records.
	dirA := t.TempDir()
	storeA, _ := cachedisk.Open(dirA, 0)
	checkCached(t, reg, cacheSrc, NewFuncCache(0).WithDisk(storeA))

	// Node B has an empty disk and fetches from A by content address.
	dirB := t.TempDir()
	storeB, _ := cachedisk.Open(dirB, 0)
	fetches := 0
	fcB := NewFuncCache(0).WithDisk(storeB).WithPeerFetch(func(key string) ([]byte, bool) {
		fetches++
		return storeA.GetSealedByHash(cachedisk.KeyHash(key))
	})
	got := checkCached(t, reg, cacheSrc, fcB)
	if got.Stats.FuncCacheHits != 3 {
		t.Fatalf("peer-warmed check: %d hits, want 3", got.Stats.FuncCacheHits)
	}
	st := fcB.Stats()
	if st.PeerHits != 3 || st.PeerRejects != 0 || fetches != 3 {
		t.Fatalf("stats = %+v fetches=%d, want 3 verified peer hits", st, fetches)
	}
	plain := checkCached(t, reg, cacheSrc, nil)
	if a, b := fmt.Sprint(got.Diags), fmt.Sprint(plain.Diags); a != b {
		t.Fatalf("peer-replayed diags diverge:\n got %s\nwant %s", a, b)
	}
	// Peer fetches were written through to B's disk: a cold restart of B no
	// longer needs A.
	storeB3, _ := cachedisk.Open(dirB, 0)
	fcB3 := NewFuncCache(0).WithDisk(storeB3).WithPeerFetch(func(string) ([]byte, bool) {
		t.Error("restart consulted the peer despite a warm local disk")
		return nil, false
	})
	again := checkCached(t, reg, cacheSrc, fcB3)
	if again.Stats.FuncCacheHits != 3 {
		t.Fatalf("restart after write-through: %d hits, want 3", again.Stats.FuncCacheHits)
	}
}

func TestFuncCachePeerRejectsTampered(t *testing.T) {
	reg := quals.MustStandard()
	dirA := t.TempDir()
	storeA, _ := cachedisk.Open(dirA, 0)
	checkCached(t, reg, cacheSrc, NewFuncCache(0).WithDisk(storeA))

	// An adversarial peer: serves A's records with one byte flipped past the
	// record header (so only the checksum/seal can catch it).
	fc := NewFuncCache(0).WithPeerFetch(func(key string) ([]byte, bool) {
		rec, ok := storeA.GetSealedByHash(cachedisk.KeyHash(key))
		if !ok {
			return nil, false
		}
		rec = append([]byte(nil), rec...)
		rec[len(rec)/2] ^= 0x20
		return rec, true
	})
	got := checkCached(t, reg, cacheSrc, fc)
	// Every fetch is rejected; every function is walked locally; the
	// diagnostics are exactly a fresh run's.
	if got.Stats.FuncCacheMisses != 3 {
		t.Fatalf("tampered peers: %d misses, want 3", got.Stats.FuncCacheMisses)
	}
	st := fc.Stats()
	if st.PeerRejects != 3 || st.PeerHits != 0 {
		t.Fatalf("stats = %+v, want 3 peer rejects", st)
	}
	plain := checkCached(t, reg, cacheSrc, nil)
	if a, b := fmt.Sprint(got.Diags), fmt.Sprint(plain.Diags); a != b {
		t.Fatalf("diags diverge under tampered peers:\n got %s\nwant %s", a, b)
	}
}

func TestFuncCacheDiskCoalescesUnderConcurrency(t *testing.T) {
	// The disk probe runs on the singleflight leader path: N concurrent
	// checks of one warm program must not multiply disk reads.
	reg := quals.MustStandard()
	dir := t.TempDir()
	store, _ := cachedisk.Open(dir, 0)
	checkCached(t, reg, cacheSrc, NewFuncCache(0).WithDisk(store))

	store2, _ := cachedisk.Open(dir, 0)
	fc := NewFuncCache(0).WithDisk(store2)
	prog := parseWith(t, reg, cacheSrc)
	const N = 8
	done := make(chan *Result, N)
	for i := 0; i < N; i++ {
		go func() {
			done <- CheckWithCache(context.Background(), prog, reg, Options{}, fc)
		}()
	}
	want := fmt.Sprint(checkCached(t, reg, cacheSrc, nil).Diags)
	for i := 0; i < N; i++ {
		r := <-done
		if got := fmt.Sprint(r.Diags); got != want {
			t.Fatalf("concurrent disk-warm check diverged:\n got %s\nwant %s", got, want)
		}
	}
	if ds := store2.Stats(); ds.Hits > 3 {
		t.Fatalf("disk read %d times for 3 functions; the leader path lost coalescing", ds.Hits)
	}
}

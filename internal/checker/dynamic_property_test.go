package checker_test

// End-to-end dynamic soundness: the C-side counterpart of Theorem 5.1. We
// generate random integer programs with pos/neg/nonzero annotations; when
// the extensible typechecker accepts a program WITHOUT casts, every
// annotated variable's run-time value must satisfy its qualifier's
// invariant at every assignment. The programs self-check: after each
// qualified assignment an invariant guard returns a distinct failure code.

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/checker"
	"repro/internal/cminor"
	"repro/internal/interp"
	"repro/internal/quals"
)

type dynGen struct{}

func (g *dynGen) next(seed *int64) int64 {
	*seed = *seed*6364136223846793005 + 1442695040888963407
	v := *seed >> 33
	if v < 0 {
		v = -v
	}
	return v
}

func (g *dynGen) expr(seed *int64, depth int, vars []string) string {
	if depth <= 0 {
		if len(vars) > 0 && g.next(seed)%2 == 0 {
			return vars[g.next(seed)%int64(len(vars))]
		}
		return fmt.Sprintf("%d", g.next(seed)%19-9)
	}
	switch g.next(seed) % 5 {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.expr(seed, depth-1, vars), g.expr(seed, depth-1, vars))
	case 1:
		return fmt.Sprintf("(%s * %s)", g.expr(seed, depth-1, vars), g.expr(seed, depth-1, vars))
	case 2:
		return fmt.Sprintf("(- %s)", g.expr(seed, depth-1, vars))
	case 3:
		if len(vars) > 0 {
			return vars[g.next(seed)%int64(len(vars))]
		}
		return fmt.Sprintf("%d", g.next(seed)%19-9)
	default:
		return fmt.Sprintf("(%s - %s)", g.expr(seed, depth-1, vars), g.expr(seed, depth-1, vars))
	}
}

var dynQuals = []struct {
	name  string
	guard string // C condition that is TRUE when the invariant is VIOLATED
}{
	{"", ""},
	{"pos", "%s <= 0"},
	{"neg", "%s >= 0"},
	{"nonzero", "%s == 0"},
}

// derivableInit builds an initializer biased toward expressions whose
// qualifier IS derivable, so the property is well-sampled; byQual tracks
// already-declared variables per qualifier.
func (g *dynGen) derivableInit(seed *int64, qual string, byQual map[string][]string) string {
	pick := func(q string) string {
		vs := byQual[q]
		if len(vs) == 0 {
			return ""
		}
		return vs[g.next(seed)%int64(len(vs))]
	}
	switch qual {
	case "pos":
		switch g.next(seed) % 4 {
		case 0:
			return fmt.Sprintf("%d", g.next(seed)%9+1)
		case 1:
			if a, b := pick("pos"), pick("pos"); a != "" && b != "" {
				return fmt.Sprintf("(%s * %s)", a, b)
			}
		case 2:
			if a, b := pick("pos"), pick("pos"); a != "" && b != "" {
				return fmt.Sprintf("(%s + %s)", a, b)
			}
		default:
			if a := pick("neg"); a != "" {
				return fmt.Sprintf("(- %s)", a)
			}
		}
		return fmt.Sprintf("%d", g.next(seed)%9+1)
	case "neg":
		if g.next(seed)%2 == 0 {
			if a := pick("pos"); a != "" {
				return fmt.Sprintf("(- %s)", a)
			}
		}
		return fmt.Sprintf("%d", -(g.next(seed)%9 + 1))
	case "nonzero":
		switch g.next(seed) % 3 {
		case 0:
			if a := pick("pos"); a != "" {
				return a
			}
		case 1:
			if a, b := pick("nonzero"), pick("nonzero"); a != "" && b != "" {
				return fmt.Sprintf("(%s * %s)", a, b)
			}
		}
		v := g.next(seed)%17 - 8
		if v == 0 {
			v = 1
		}
		return fmt.Sprintf("%d", v)
	}
	return "0"
}

// generate builds a random program; it returns the source and the number
// of qualified variables.
func (g *dynGen) generate(seed int64) (string, int) {
	s := seed
	var sb strings.Builder
	sb.WriteString("int main() {\n")
	var vars []string
	byQual := map[string][]string{}
	qualified := 0
	n := g.next(&s)%8 + 2
	failCode := 1
	for i := int64(0); i < n; i++ {
		name := fmt.Sprintf("x%d", i)
		q := dynQuals[g.next(&s)%int64(len(dynQuals))]
		if q.name == "" {
			fmt.Fprintf(&sb, "  int %s = %s;\n", name, g.expr(&s, 2, vars))
		} else {
			qualified++
			// Bias 2/3 of qualified initializers toward derivable shapes;
			// the rest stay adversarial and exercise rejection.
			var init string
			if g.next(&s)%3 != 0 {
				init = g.derivableInit(&s, q.name, byQual)
			} else {
				init = g.expr(&s, 2, vars)
			}
			fmt.Fprintf(&sb, "  int %s %s = %s;\n", q.name, name, init)
			// Overflow escape hatch: the checker is deliberately unsound
			// under arithmetic overflow (section 3.3), so runs whose values
			// leave the safe range are outside the property (exit 99).
			fmt.Fprintf(&sb, "  if (%s > 1000000000 || %s < -1000000000) { return 99; }\n", name, name)
			// Guard: if the invariant is violated at run time, return a
			// distinct nonzero code.
			fmt.Fprintf(&sb, "  if (%s) { return %d; }\n", fmt.Sprintf(q.guard, name), failCode)
			failCode++
			byQual[q.name] = append(byQual[q.name], name)
		}
		vars = append(vars, name)
	}
	sb.WriteString("  return 0;\n}\n")
	return sb.String(), qualified
}

func TestDynamicSoundnessProperty(t *testing.T) {
	reg := quals.MustStandard()
	names := reg.Names()
	gen := &dynGen{}
	accepted := 0
	check := func(seed int64) bool {
		src, qualified := gen.generate(seed)
		prog, err := cminor.Parse("gen.c", src, names)
		if err != nil {
			t.Logf("generator produced invalid program: %v\n%s", err, src)
			return false
		}
		res := checker.Check(prog, reg)
		if len(res.Diags) > 0 {
			return true // rejected programs are outside the property
		}
		if qualified == 0 {
			return true
		}
		accepted++
		out, err := interp.Run(prog, reg, interp.Options{RuntimeChecks: true})
		if err != nil {
			t.Logf("accepted program failed to run: %v\n%s", err, src)
			return false
		}
		if out.Exit == 99 {
			return true // overflow territory: the documented 3.3 unsoundness
		}
		if out.Exit != 0 {
			t.Logf("SOUNDNESS VIOLATION: accepted program's invariant guard %d fired:\n%s", out.Exit, src)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
	if accepted < 100 {
		t.Errorf("only %d accepted programs with qualified variables; property undersampled", accepted)
	}
}

// generatePointer builds a random pointer program exercising nonnull (and
// nonzero on the pointed-to data): int locals, nonnull pointers initialized
// from &local (the derivable shape) or adversarially from NULL / a plain
// pointer variable, guards that return a distinct code when a nonnull
// pointer is NULL at run time, and dereference reads/writes through the
// qualified pointers. Returns the source and the number of qualified
// pointer declarations.
func (g *dynGen) generatePointer(seed int64) (string, int) {
	s := seed
	var sb strings.Builder
	sb.WriteString("int main() {\n")
	// A small pool of int locals to point at.
	nInts := g.next(&s)%3 + 2
	var ints []string
	for i := int64(0); i < nInts; i++ {
		name := fmt.Sprintf("v%d", i)
		fmt.Fprintf(&sb, "  int %s = %d;\n", name, g.next(&s)%19-9)
		ints = append(ints, name)
	}
	pickInt := func() string { return ints[g.next(&s)%int64(len(ints))] }
	var ptrs []string
	qualified := 0
	failCode := 1
	n := g.next(&s)%5 + 1
	for i := int64(0); i < n; i++ {
		name := fmt.Sprintf("p%d", i)
		// Bias 2/3 toward the derivable &L initializer; the rest are
		// adversarial shapes the checker must reject.
		if g.next(&s)%3 != 0 {
			fmt.Fprintf(&sb, "  int* nonnull %s = &%s;\n", name, pickInt())
			qualified++
			// Occasional re-assignment, again through an assign-rule shape.
			if g.next(&s)%3 == 0 {
				fmt.Fprintf(&sb, "  %s = &%s;\n", name, pickInt())
			}
			// Run-time invariant guard: a nonnull pointer must never be NULL.
			fmt.Fprintf(&sb, "  if (%s == NULL) { return %d; }\n", name, failCode)
			failCode++
			// Exercise the pointer: read through it, sometimes write.
			fmt.Fprintf(&sb, "  int r%d = *%s;\n", i, name)
			if g.next(&s)%2 == 0 {
				fmt.Fprintf(&sb, "  *%s = %d;\n", name, g.next(&s)%19-9)
			}
			ptrs = append(ptrs, name)
		} else {
			switch g.next(&s) % 3 {
			case 0:
				fmt.Fprintf(&sb, "  int* nonnull %s = NULL;\n", name)
				qualified++
			case 1:
				fmt.Fprintf(&sb, "  int* t%d = NULL;\n  int* nonnull %s = t%d;\n", i, name, i)
				qualified++
			default:
				// A plain pointer flowing into a nonnull one: also rejected
				// (the checker's derivation is per-expression, and a plain
				// variable carries no nonnull evidence).
				fmt.Fprintf(&sb, "  int* u%d = &%s;\n  int* nonnull %s = u%d;\n", i, pickInt(), name, i)
				qualified++
			}
			fmt.Fprintf(&sb, "  if (%s == NULL) { return %d; }\n", name, failCode)
			failCode++
		}
	}
	sb.WriteString("  return 0;\n}\n")
	return sb.String(), qualified
}

// TestDynamicPointerSoundnessProperty is the pointer-shaped instance of the
// dynamic soundness property: when the checker accepts a program with
// nonnull-annotated pointers without warnings, no nonnull guard may fire at
// run time — and the adversarial NULL-flow shapes must be rejected.
func TestDynamicPointerSoundnessProperty(t *testing.T) {
	reg := quals.MustStandard()
	names := reg.Names()
	gen := &dynGen{}
	accepted := 0
	check := func(seed int64) bool {
		src, qualified := gen.generatePointer(seed)
		prog, err := cminor.Parse("gen.c", src, names)
		if err != nil {
			t.Logf("generator produced invalid program: %v\n%s", err, src)
			return false
		}
		res := checker.Check(prog, reg)
		// Any NULL-flow shape must be diagnosed: an accepted program with a
		// "= NULL" or plain-pointer initializer of a nonnull pointer would
		// itself be a soundness bug, which the run below would then catch.
		if len(res.Diags) > 0 {
			return true // rejected programs are outside the run-time property
		}
		if qualified == 0 {
			return true
		}
		accepted++
		out, err := interp.Run(prog, reg, interp.Options{RuntimeChecks: true})
		if err != nil {
			t.Logf("accepted pointer program failed to run: %v\n%s", err, src)
			return false
		}
		if out.Exit != 0 {
			t.Logf("SOUNDNESS VIOLATION: accepted program's nonnull guard %d fired:\n%s", out.Exit, src)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	if accepted < 100 {
		t.Errorf("only %d accepted pointer programs with nonnull variables; property undersampled", accepted)
	}
}

// TestDynamicPointerNullFlowRejected pins the adversarial direction: every
// program that initializes a nonnull pointer from NULL (directly or through
// a plain pointer variable) must be rejected statically.
func TestDynamicPointerNullFlowRejected(t *testing.T) {
	reg := quals.MustStandard()
	names := reg.Names()
	for _, src := range []string{
		"int main() {\n  int* nonnull p = NULL;\n  return 0;\n}\n",
		"int main() {\n  int* t = NULL;\n  int* nonnull p = t;\n  return 0;\n}\n",
		"int main() {\n  int v = 1;\n  int* u = &v;\n  int* nonnull p = u;\n  return 0;\n}\n",
		"int main() {\n  int v = 1;\n  int* nonnull p = &v;\n  p = NULL;\n  return 0;\n}\n",
	} {
		prog, err := cminor.Parse("gen.c", src, names)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		if res := checker.Check(prog, reg); len(res.Diags) == 0 {
			t.Errorf("NULL-flow program accepted without warnings:\n%s", src)
		}
	}
}

// TestDynamicSoundnessWithCasts: with casts in play, an accepted program
// may fail a cast's run-time check — but then the run must halt AT the cast
// (fatal error semantics) rather than continue into a state that violates a
// static invariant guard.
func TestDynamicSoundnessWithCasts(t *testing.T) {
	reg := quals.MustStandard()
	names := reg.Names()
	gen := &dynGen{}
	check := func(seed int64) bool {
		s := seed
		// let x = <expr>; int pos y = (int pos) x; guard.
		init := gen.expr(&s, 3, nil)
		src := fmt.Sprintf(`
int main() {
  int x = %s;
  int pos y = (int pos) x;
  if (y <= 0) { return 7; }
  return 0;
}
`, init)
		prog, err := cminor.Parse("gen.c", src, names)
		if err != nil {
			return false
		}
		res := checker.Check(prog, reg)
		if len(res.Diags) > 0 {
			t.Logf("cast program rejected: %v", res.Diags)
			return false // casts always make the program check
		}
		out, err := interp.Run(prog, reg, interp.Options{RuntimeChecks: true})
		if err != nil {
			return false
		}
		if out.Failure != nil {
			// The check fired: the run halted at the cast, so the guard
			// never executed and the invariant was never violated silently.
			return out.Exit == 0 && out.Failure.Qualifier == "pos"
		}
		// The check passed: the guard must agree.
		return out.Exit == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

package checker

import (
	"repro/internal/cminor"
	"repro/internal/qdl"
)

// This file implements the flow-sensitivity extension the paper's section 8
// plans ("we plan to extend our typechecking algorithm to incorporate
// flow-sensitivity, borrowing ideas from CQUAL"): branch conditions refine
// the qualifiers of tested variables within the guarded branch, eliminating
// casts for idioms like grep's
//
//	if ((t = d->trans[works]) != NULL) { works = t[*p]; ... }
//
// Refinements are conservative:
//   - only variables whose address is never taken are refined;
//   - an assignment to the variable kills its refinement;
//   - any call kills refinements of globals (the callee may write them);
//   - loop conditions do not refine (the body may invalidate the test).
//
// A refinement maps a variable to extra value qualifiers whose declared
// invariant is IMPLIED by the branch condition, so soundness follows from
// the same invariants the soundness checker proved.

// refEnv maps variable names to the set of refined-in qualifiers.
type refEnv map[string]map[string]bool

func (e refEnv) clone() refEnv {
	out := make(refEnv, len(e))
	for k, v := range e {
		qs := make(map[string]bool, len(v))
		for q := range v {
			qs[q] = true
		}
		out[k] = qs
	}
	return out
}

// merge adds refinements (union per variable).
func (e refEnv) merge(add map[string][]string) refEnv {
	if len(add) == 0 {
		return e
	}
	out := e.clone()
	for name, qs := range add {
		if out[name] == nil {
			out[name] = map[string]bool{}
		}
		for _, q := range qs {
			out[name][q] = true
		}
	}
	return out
}

// terminates reports whether a statement never falls through (every path
// ends in return, break, or continue), enabling the early-exit refinement:
// after "if (p == NULL) return;" the negated condition holds.
func terminates(s cminor.Stmt) bool {
	switch s := s.(type) {
	case *cminor.Return, *cminor.Break, *cminor.Continue:
		return true
	case *cminor.Block:
		for _, inner := range s.Stmts {
			if terminates(inner) {
				return true // anything after it is dead
			}
		}
		return false
	case *cminor.If:
		return s.Else != nil && terminates(s.Then) && terminates(s.Else)
	}
	return false
}

// cmpShape is a one-variable comparison "x OP k" with k an integer or NULL.
type cmpShape struct {
	op     cminor.BinopKind
	isNull bool
	k      int64
}

// negateCmp returns the complementary comparison.
func negateCmp(s cmpShape) cmpShape {
	switch s.op {
	case cminor.BEq:
		s.op = cminor.BNe
	case cminor.BNe:
		s.op = cminor.BEq
	case cminor.BLt:
		s.op = cminor.BGe
	case cminor.BLe:
		s.op = cminor.BGt
	case cminor.BGt:
		s.op = cminor.BLe
	case cminor.BGe:
		s.op = cminor.BLt
	}
	return s
}

// swapCmp mirrors "k OP x" into "x OP' k".
func swapCmp(op cminor.BinopKind) cminor.BinopKind {
	switch op {
	case cminor.BLt:
		return cminor.BGt
	case cminor.BLe:
		return cminor.BGe
	case cminor.BGt:
		return cminor.BLt
	case cminor.BGe:
		return cminor.BLe
	}
	return op // ==, != are symmetric
}

func cmpHolds(op cminor.BinopKind, x, k int64) bool {
	switch op {
	case cminor.BEq:
		return x == k
	case cminor.BNe:
		return x != k
	case cminor.BLt:
		return x < k
	case cminor.BLe:
		return x <= k
	case cminor.BGt:
		return x > k
	case cminor.BGe:
		return x >= k
	}
	return false
}

// impliesCmp reports whether "x condOp ck" implies "x invOp ik" over the
// integers. Both predicates only change truth at their boundaries, so
// testing boundary witnesses (plus far points) is exact.
func impliesCmp(condOp cminor.BinopKind, ck int64, invOp cminor.BinopKind, ik int64) bool {
	witnesses := []int64{ck - 1, ck, ck + 1, ik - 1, ik, ik + 1, -1 << 40, 1 << 40}
	for _, x := range witnesses {
		if cmpHolds(condOp, x, ck) && !cmpHolds(invOp, x, ik) {
			return false
		}
	}
	return true
}

// invariantShape extracts "value(E) OP k" from a value qualifier's
// invariant; ok is false for any other shape.
func invariantShape(d *qdl.Def) (cmpShape, bool) {
	cmp, ok := d.Invariant.(qdl.PCmp)
	if !ok {
		return cmpShape{}, false
	}
	if _, ok := cmp.L.(qdl.TValue); !ok {
		return cmpShape{}, false
	}
	var op cminor.BinopKind
	switch cmp.Op {
	case "==":
		op = cminor.BEq
	case "!=":
		op = cminor.BNe
	case "<":
		op = cminor.BLt
	case "<=":
		op = cminor.BLe
	case ">":
		op = cminor.BGt
	case ">=":
		op = cminor.BGe
	default:
		return cmpShape{}, false
	}
	switch r := cmp.R.(type) {
	case qdl.TNull:
		return cmpShape{op: op, isNull: true}, true
	case qdl.TInt:
		return cmpShape{op: op, k: r.Value}, true
	}
	return cmpShape{}, false
}

// condImpliesInvariant reports whether the tested condition implies the
// qualifier's invariant.
func condImpliesInvariant(cond, inv cmpShape) bool {
	if cond.isNull != inv.isNull {
		return false
	}
	if cond.isNull {
		// Over pointers only equality forms appear: x != NULL implies
		// value != NULL; x == NULL implies nothing useful here.
		return cond.op == cminor.BNe && inv.op == cminor.BNe
	}
	return impliesCmp(cond.op, cond.k, inv.op, inv.k)
}

// refinableVar returns the variable name when lv is a refinable variable:
// its address is never taken (writes through pointers would invalidate the
// refinement invisibly).
func (en *engine) refinableVar(e cminor.Expr) (string, bool) {
	lve, ok := e.(*cminor.LVExpr)
	if !ok {
		return "", false
	}
	v, ok := lve.LV.(*cminor.VarLV)
	if !ok {
		return "", false
	}
	if en.addrTaken[v.Name] {
		return "", false
	}
	return v.Name, true
}

// refinementsFromCond extracts qualifier refinements implied by a branch
// condition (negate selects the else-branch sense).
func (en *engine) refinementsFromCond(cond cminor.Expr, negate bool) map[string][]string {
	out := map[string][]string{}
	var walk func(e cminor.Expr, neg bool)
	addShape := func(name string, shape cmpShape) {
		for _, d := range en.reg.Defs() {
			if d.Kind != qdl.ValueQualifier || d.Invariant == nil {
				continue
			}
			inv, ok := invariantShape(d)
			if !ok {
				continue
			}
			if condImpliesInvariant(shape, inv) {
				out[name] = append(out[name], d.Name)
			}
		}
	}
	constShape := func(e cminor.Expr) (int64, bool, bool) { // value, isNull, ok
		switch e := e.(type) {
		case *cminor.IntLit:
			return e.Value, false, true
		case *cminor.NullLit:
			return 0, true, true
		}
		return 0, false, false
	}
	walk = func(e cminor.Expr, neg bool) {
		switch e := e.(type) {
		case *cminor.Binop:
			switch e.Op {
			case cminor.BAnd:
				if !neg {
					walk(e.L, false)
					walk(e.R, false)
				}
				return
			case cminor.BOr:
				if neg { // !(a || b) == !a && !b
					walk(e.L, true)
					walk(e.R, true)
				}
				return
			case cminor.BEq, cminor.BNe, cminor.BLt, cminor.BLe, cminor.BGt, cminor.BGe:
				op := e.Op
				varSide, constSide := e.L, e.R
				if _, _, ok := constShape(e.L); ok {
					varSide, constSide = e.R, e.L
					op = swapCmp(op)
				}
				name, ok := en.refinableVar(varSide)
				if !ok {
					return
				}
				k, isNull, ok := constShape(constSide)
				if !ok {
					return
				}
				shape := cmpShape{op: op, isNull: isNull, k: k}
				// A zero literal compared against a pointer is NULL.
				if !isNull && k == 0 && cminor.IsPointer(en.info.TypeOf(varSide)) {
					shape.isNull = true
				}
				if neg {
					shape = negateCmp(shape)
				}
				addShape(name, shape)
			}
		case *cminor.Unop:
			if e.Op == cminor.UNot {
				walk(e.X, !neg)
			}
		case *cminor.LVExpr:
			// Truthiness of a pointer: if (p) means p != NULL.
			if name, ok := en.refinableVar(e); ok && cminor.IsPointer(en.info.TypeOf(e)) && !neg {
				addShape(name, cmpShape{op: cminor.BNe, isNull: true})
			}
		}
	}
	walk(cond, negate)
	return out
}

// collectKills gathers the refinement kills of a statement subtree:
// variables assigned within it, plus the "*globals*" marker when a call may
// write globals.
func collectKills(s cminor.Stmt, info *cminor.TypeInfo) map[string]bool {
	kills := map[string]bool{}
	cminor.WalkStmt(s, cminor.Visitor{Instr: func(in cminor.Instr) {
		switch in := in.(type) {
		case *cminor.Assign:
			if v, ok := in.LHS.(*cminor.VarLV); ok {
				kills[v.Name] = true
			}
		case *cminor.CallInstr:
			kills["*globals*"] = true
			if in.LHS != nil {
				if v, ok := in.LHS.(*cminor.VarLV); ok {
					kills[v.Name] = true
				}
			}
		}
	}})
	return kills
}

// applyKills removes killed refinements from env, honoring the globals
// marker.
func (en *engine) applyKills(env refEnv, kills map[string]bool) refEnv {
	if len(kills) == 0 {
		return env
	}
	out := make(refEnv, len(env))
	for name, qs := range env {
		if kills[name] {
			continue
		}
		if kills["*globals*"] && en.globalNames[name] {
			continue
		}
		out[name] = qs
	}
	return out
}

package checker

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cminor"
	"repro/internal/input"
	"repro/internal/qdl"
	"repro/internal/scheduler"
)

// This file is the repo-scale entry point: CheckTree walks a directory,
// parses every source file, and checks them all over a work-stealing
// scheduler with per-file → per-function work units. A file task runs the
// program-level passes and then spawns one unit per function onto its own
// worker's deque; idle workers steal those units, so one huge file's
// functions spread across the pool instead of serializing behind it.
//
// Determinism: files are indexed in walk (lexical) order and functions in
// declaration order, every unit writes only its own slot, and the last unit
// of a file merges the slots in index order — so the assembled diagnostics
// are byte-identical at any worker count and any steal interleaving, and
// identical to checking each file alone with CheckWithCache.

// TreeOptions configures CheckTree.
type TreeOptions struct {
	// Options configures per-file checking exactly as for CheckWith; the
	// Concurrency field is ignored here (the tree scheduler owns parallelism).
	Options
	// Workers bounds the scheduler pool (the -j flag); 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Seed seeds the scheduler's deterministic victim selection.
	Seed uint64
	// Walk configures file discovery (extensions, skip rules, size caps).
	Walk input.WalkOptions
	// Cache, when non-nil, is the shared function-granular result cache;
	// identical functions across files coalesce to one walk.
	Cache *FuncCache
	// DegradeReadErrors turns a vanished or unreadable file into a per-file
	// "internal" diagnostic instead of a FileResult.Err. Under a watch daemon
	// files routinely disappear between walk and read (editor rename-replace
	// saves, git checkout); one vanished file must not fail the generation.
	DegradeReadErrors bool
}

// FileResult is one file's checking outcome.
type FileResult struct {
	// File is the root-relative slash path; it is also the Pos.File of every
	// diagnostic.
	File  string
	Diags []Diagnostic
	Stats Stats
	// Err is a read or parse failure (Diags is empty then), or the context
	// error for files skipped by cancellation.
	Err error
}

// TreeResult is the outcome of checking a directory tree.
type TreeResult struct {
	// Files holds per-file results in walk (lexical) order.
	Files []FileResult
	// Stats aggregates every file's checking statistics.
	Stats Stats
	// Walk, Read, and Sched are the discovery, streaming-reader, and
	// scheduler telemetry for the run.
	Walk  input.WalkStats
	Read  input.ReaderStats
	Sched scheduler.Stats
	// Duration is the wall-clock time of the checking phase (walk included).
	Duration time.Duration
	// Err is the context error when the run was cut short: absent
	// diagnostics are then inconclusive.
	Err error
}

// FilesPerSec is the throughput of the run (0 for an instant or empty run).
func (r *TreeResult) FilesPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(len(r.Files)) / r.Duration.Seconds()
}

// TreeChecker is a reusable repo-scale checking engine: one scheduler pool,
// one streaming reader, and one function cache serving any number of passes.
// The watch daemon keeps a TreeChecker alive across generations so the pool's
// workers, the reader's pooled buffers, and the cache's warm entries survive
// from one save to the next instead of being rebuilt per pass. Close releases
// the pool; a closed TreeChecker must not be used again.
type TreeChecker struct {
	reg       *qdl.Registry
	opts      TreeOptions
	qualNames map[string]bool
	maxBytes  int64
	pool      *scheduler.Pool
	reader    *input.Reader
}

// NewTreeChecker builds a checking engine with a running (idle) worker pool.
func NewTreeChecker(reg *qdl.Registry, opts TreeOptions) *TreeChecker {
	maxBytes := opts.Walk.MaxFileBytes
	if maxBytes <= 0 {
		maxBytes = input.DefaultMaxFileBytes
	}
	return &TreeChecker{
		reg:       reg,
		opts:      opts,
		qualNames: reg.Names(),
		maxBytes:  maxBytes,
		pool:      scheduler.New(opts.Workers, opts.Seed),
		reader:    input.NewReader(),
	}
}

// Close stops and joins the worker pool.
func (tc *TreeChecker) Close() { tc.pool.Close() }

// ReaderStats snapshots the streaming reader's cumulative counters.
func (tc *TreeChecker) ReaderStats() input.ReaderStats { return tc.reader.Stats() }

// SchedStats snapshots the scheduler pool's cumulative counters.
func (tc *TreeChecker) SchedStats() scheduler.Stats { return tc.pool.Stats() }

// CheckFiles checks the given files over the persistent pool and returns one
// result per file, index-aligned with the input. This is the incremental
// re-check path: the watch daemon passes only the files whose content
// changed, and within each file only the functions whose content key changed
// miss the cache — everything else replays. Results are deterministic for a
// given file list at any worker count.
func (tc *TreeChecker) CheckFiles(ctx context.Context, files []input.File) []FileResult {
	results := make([]FileResult, len(files))
	for i := range files {
		i, f := i, files[i]
		tc.pool.Submit(func(c *scheduler.Ctx) {
			checkFileTask(ctx, c, f, tc.reg, tc.qualNames, tc.maxBytes, tc.reader, tc.opts, &results[i])
		})
	}
	tc.pool.Wait()
	return results
}

// CheckTree walks root and checks every collected file (the full pass).
func (tc *TreeChecker) CheckTree(ctx context.Context, root string) (*TreeResult, error) {
	start := time.Now()
	files, wstats, err := input.Walk(root, tc.opts.Walk)
	if err != nil {
		return nil, err
	}
	results := tc.CheckFiles(ctx, files)
	res := &TreeResult{
		Files: results,
		Walk:  wstats,
		Read:  tc.reader.Stats(),
		Sched: tc.pool.Stats(),
		Err:   ctx.Err(),
		Stats: Stats{
			Annotations: map[string]int{},
			QualCasts:   map[string]int{},
			RefUses:     map[string]int{},
		},
	}
	for i := range results {
		addStats(&res.Stats, results[i].Stats)
	}
	res.Duration = time.Since(start)
	return res, nil
}

// CheckTree checks every matching source file under root. Diagnostics come
// back per file, in deterministic order regardless of opts.Workers. Only
// walk-level failures (unreadable root) return a non-nil error; per-file
// read/parse failures land on the FileResult.
func CheckTree(ctx context.Context, root string, reg *qdl.Registry, opts TreeOptions) (*TreeResult, error) {
	tc := NewTreeChecker(reg, opts)
	defer tc.Close()
	return tc.CheckTree(ctx, root)
}

// checkFileTask is one file's task: read, parse, run the program-level
// passes, then spawn one scheduler unit per function. The last function unit
// to finish assembles the file's result (there is no blocking join — a
// worker is never parked waiting for another worker's units).
func checkFileTask(ctx context.Context, c *scheduler.Ctx, f input.File, reg *qdl.Registry,
	qualNames map[string]bool, maxBytes int64, reader *input.Reader, opts TreeOptions, out *FileResult) {
	out.File = f.Rel
	if err := ctx.Err(); err != nil {
		out.Err = err
		return
	}
	src, err := reader.ReadString(f.Path, maxBytes)
	if err != nil {
		if opts.DegradeReadErrors {
			// The file vanished (or turned unreadable) between walk and read.
			// Degrade to a per-file transient diagnostic: the generation
			// completes, and the next rescan reconciles the file's fate.
			out.Diags = []Diagnostic{{
				Pos:  cminor.Pos{File: f.Rel, Line: 1, Col: 1},
				Code: "internal",
				Msg:  fmt.Sprintf("read failed: %v", err),
			}}
			return
		}
		out.Err = err
		return
	}
	prog, err := cminor.Parse(f.Rel, src, qualNames)
	if err != nil {
		out.Err = err
		return
	}
	en := newEngine(ctx, prog, reg, opts.Options, opts.Cache)
	en.preFuncPasses()
	funcs := prog.Funcs
	if len(funcs) == 0 {
		finishFileTask(ctx, en, nil, out)
		return
	}
	children := make([]*engine, len(funcs))
	var remaining atomic.Int64
	remaining.Store(int64(len(funcs)))
	for i := range funcs {
		i := i
		c.Spawn(func(*scheduler.Ctx) {
			if ctx.Err() == nil {
				child := en.childEngine()
				child.checkFuncCached(funcs[i])
				children[i] = child
			}
			if remaining.Add(-1) == 0 {
				finishFileTask(ctx, en, children, out)
			}
		})
	}
}

// finishFileTask merges the function children in declaration order, runs the
// post-function passes, and writes the file's result slot.
func finishFileTask(ctx context.Context, en *engine, children []*engine, out *FileResult) {
	for _, child := range children {
		if child != nil {
			en.mergeChild(child)
		}
	}
	en.addrOfPass()
	res := en.finishResult(ctx)
	out.Diags = res.Diags
	out.Stats = res.Stats
	out.Err = res.Err
}

// addStats folds one file's statistics into an aggregate whose maps are
// already allocated.
func addStats(dst *Stats, src Stats) {
	dst.Dereferences += src.Dereferences
	for k, v := range src.Annotations {
		dst.Annotations[k] += v
	}
	for k, v := range src.QualCasts {
		dst.QualCasts[k] += v
	}
	for k, v := range src.RefUses {
		dst.RefUses[k] += v
	}
	dst.RestrictChecks += src.RestrictChecks
	dst.RestrictFailures += src.RestrictFailures
	dst.MemoHits += src.MemoHits
	dst.MemoMisses += src.MemoMisses
	dst.FuncCacheHits += src.FuncCacheHits
	dst.FuncCacheMisses += src.FuncCacheMisses
	dst.FuncCacheCoalesced += src.FuncCacheCoalesced
}

package checker

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cminor"
	"repro/internal/quals"
)

const twoFuncSrc = `
int good() {
  int pos x = 3;
  return x;
}
int other() {
  int pos y = 7;
  return y;
}
`

// TestCheckFuncPanicIsolation: a panic while walking one function body must
// surface as an "internal" diagnostic on that function only; the other
// functions still check (at every concurrency setting).
func TestCheckFuncPanicIsolation(t *testing.T) {
	reg := quals.MustStandard()
	prog, err := cminor.Parse("test.c", twoFuncSrc, reg.Names())
	if err != nil {
		t.Fatal(err)
	}
	CheckFuncHook = func(f *cminor.FuncDef) {
		if f.Name == "good" {
			panic("injected checker fault")
		}
	}
	defer func() { CheckFuncHook = nil }()

	for _, workers := range []int{1, 4} {
		res := CheckWith(prog, reg, Options{Concurrency: workers})
		internal := res.Errors("internal")
		if len(internal) != 1 {
			t.Fatalf("workers=%d: %d internal diagnostics, want 1: %v", workers, len(internal), res.Diags)
		}
		if !strings.Contains(internal[0].Msg, "good") || !strings.Contains(internal[0].Msg, "injected checker fault") {
			t.Errorf("workers=%d: internal diagnostic misses context: %s", workers, internal[0].Msg)
		}
		if len(res.Diags) != 1 {
			t.Errorf("workers=%d: unrelated diagnostics alongside the panic: %v", workers, res.Diags)
		}
	}
}

// TestCheckWithContextCancel: a pre-canceled context skips the function walk
// and marks the result inconclusive via Err.
func TestCheckWithContextCancel(t *testing.T) {
	reg := quals.MustStandard()
	prog, err := cminor.Parse("test.c", twoFuncSrc, reg.Names())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := CheckWithContext(ctx, prog, reg, Options{})
	if res.Err == nil {
		t.Error("canceled check reported no Err")
	}
	// And an un-canceled context reports a clean run.
	if res := CheckWithContext(context.Background(), prog, reg, Options{}); res.Err != nil || len(res.Diags) != 0 {
		t.Errorf("clean program: err=%v diags=%v", res.Err, res.Diags)
	}
}

package checker

import (
	"reflect"
	"testing"

	"repro/internal/cminor"
	"repro/internal/corpus"
	"repro/internal/qdl"
	"repro/internal/quals"
)

// checkCorpus parses prog fresh (checking annotates the AST, so runs must
// not share one) and checks it at the given concurrency.
func checkCorpus(t *testing.T, reg *qdl.Registry, p corpus.Program, opts Options) *Result {
	t.Helper()
	prog, err := cminor.Parse(p.Name+".c", p.Source, reg.Names())
	if err != nil {
		t.Fatalf("%s: parse: %v", p.Name, err)
	}
	return CheckWith(prog, reg, opts)
}

// TestCheckWithParallelMatchesSerial is the checker's determinism contract:
// per-function parallel checking must produce the same diagnostics in the
// same source order, and the same statistics, as the serial pass. Run under
// -race it also exercises the shared engine tables concurrently.
func TestCheckWithParallelMatchesSerial(t *testing.T) {
	reg := quals.MustStandard()
	for _, p := range corpus.All() {
		for _, flow := range []bool{false, true} {
			serial := checkCorpus(t, reg, p, Options{FlowSensitive: flow, Concurrency: 1})
			parallel := checkCorpus(t, reg, p, Options{FlowSensitive: flow, Concurrency: 8})

			if len(serial.Diags) != len(parallel.Diags) {
				t.Errorf("%s (flow=%t): diag counts differ: serial %d, parallel %d",
					p.Name, flow, len(serial.Diags), len(parallel.Diags))
				continue
			}
			for i := range serial.Diags {
				if s, par := serial.Diags[i].String(), parallel.Diags[i].String(); s != par {
					t.Errorf("%s (flow=%t): diag %d differs:\nserial:   %s\nparallel: %s",
						p.Name, flow, i, s, par)
				}
			}
			if !reflect.DeepEqual(serial.Stats, parallel.Stats) {
				t.Errorf("%s (flow=%t): stats differ:\nserial:   %+v\nparallel: %+v",
					p.Name, flow, serial.Stats, parallel.Stats)
			}
			if len(serial.Casts) != len(parallel.Casts) {
				t.Errorf("%s (flow=%t): cast counts differ: serial %d, parallel %d",
					p.Name, flow, len(serial.Casts), len(parallel.Casts))
			}
		}
	}
}

// TestCheckWithParallelTaintCorpus repeats the contract under the taint
// configuration the Table 2 experiment uses, where bftpd produces real
// warnings whose order must be stable.
func TestCheckWithParallelTaintCorpus(t *testing.T) {
	reg, err := quals.TaintWithConstants()
	if err != nil {
		t.Fatal(err)
	}
	p := corpus.Bftpd()
	serial := checkCorpus(t, reg, p, Options{Concurrency: 1})
	parallel := checkCorpus(t, reg, p, Options{Concurrency: 8})
	if len(serial.Diags) != len(parallel.Diags) {
		t.Fatalf("diag counts differ: serial %d, parallel %d", len(serial.Diags), len(parallel.Diags))
	}
	for i := range serial.Diags {
		if s, par := serial.Diags[i].String(), parallel.Diags[i].String(); s != par {
			t.Errorf("diag %d differs:\nserial:   %s\nparallel: %s", i, s, par)
		}
	}
	if !reflect.DeepEqual(serial.Stats, parallel.Stats) {
		t.Errorf("stats differ:\nserial:   %+v\nparallel: %+v", serial.Stats, parallel.Stats)
	}
}

package checker

import (
	"strings"
	"testing"

	"repro/internal/cminor"
	"repro/internal/quals"
)

func inferOn(t *testing.T, src string, qualNames []string) ([]InferredAnnotation, *cminor.Program) {
	t.Helper()
	reg := quals.MustStandard()
	prog, err := cminor.Parse("test.c", src, reg.Names())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	inferred, err := Infer(prog, reg, qualNames)
	if err != nil {
		t.Fatal(err)
	}
	return inferred, prog
}

func hasInferred(inferred []InferredAnnotation, name, qual string) bool {
	for _, a := range inferred {
		if a.Var == name && a.Qual == qual {
			return true
		}
	}
	return false
}

func TestInferSimpleConstants(t *testing.T) {
	inferred, _ := inferOn(t, `
void f() {
  int a = 5;
  int b = -3;
  int c = 0;
}
`, []string{"pos", "neg", "nonzero"})
	if !hasInferred(inferred, "a", "pos") || !hasInferred(inferred, "a", "nonzero") {
		t.Errorf("a should infer pos+nonzero: %v", inferred)
	}
	if !hasInferred(inferred, "b", "neg") {
		t.Errorf("b should infer neg: %v", inferred)
	}
	if hasInferred(inferred, "c", "pos") || hasInferred(inferred, "c", "neg") || hasInferred(inferred, "c", "nonzero") {
		t.Errorf("c must infer nothing: %v", inferred)
	}
}

func TestInferThroughDerivation(t *testing.T) {
	// m = a * b is pos only if a and b stay pos: a mutually dependent
	// fixpoint.
	inferred, _ := inferOn(t, `
void f() {
  int a = 2;
  int b = 3;
  int m = a * b;
}
`, []string{"pos"})
	for _, v := range []string{"a", "b", "m"} {
		if !hasInferred(inferred, v, "pos") {
			t.Errorf("%s should infer pos: %v", inferred, v)
		}
	}
}

func TestInferRetractsOnBadAssignment(t *testing.T) {
	// a is reassigned to a non-positive value: the assumption must retract,
	// and m (depending on a) must lose pos transitively.
	inferred, _ := inferOn(t, `
void f(int unknown) {
  int a = 2;
  int m = a * a;
  a = unknown;
}
`, []string{"pos"})
	if hasInferred(inferred, "a", "pos") {
		t.Errorf("a is reassigned arbitrarily; pos must retract: %v", inferred)
	}
	if hasInferred(inferred, "m", "pos") {
		// m's initializer uses a; after retraction the derivation fails.
		t.Errorf("m depends on a; pos must retract transitively: %v", inferred)
	}
}

func TestInferParametersClosedWorld(t *testing.T) {
	// Every call site passes a positive value, so the parameter infers pos
	// and the body's product becomes derivable.
	inferred, prog := inferOn(t, `
int square(int x) {
  return x * x;
}
void main2() {
  int r;
  r = square(3);
  r = square(7);
}
`, []string{"pos"})
	if !hasInferred(inferred, "x", "pos") {
		t.Errorf("parameter x should infer pos: %v", inferred)
	}
	// The program with applied annotations still checks cleanly.
	reg := quals.MustStandard()
	res := Check(prog, reg)
	for _, d := range res.Diags {
		t.Errorf("after inference: %s", d)
	}
}

func TestInferParameterRetractsOnOneBadCall(t *testing.T) {
	inferred, _ := inferOn(t, `
int square(int x) {
  return x * x;
}
void main2(int anything) {
  int r;
  r = square(3);
  r = square(anything);
}
`, []string{"pos"})
	if hasInferred(inferred, "x", "pos") {
		t.Errorf("one call site passes an arbitrary value; x must not infer pos: %v", inferred)
	}
}

func TestInferAddressTakenExcluded(t *testing.T) {
	inferred, _ := inferOn(t, `
void f() {
  int a = 5;
  int* p = &a;
  *p = -1;
}
`, []string{"pos"})
	if hasInferred(inferred, "a", "pos") {
		t.Errorf("address-taken a must be excluded: %v", inferred)
	}
}

func TestInferPreservesUserAnnotations(t *testing.T) {
	_, prog := inferOn(t, `
void f(int pos given) {
  int d = given * given;
}
`, []string{"pos"})
	// The user's annotation must survive on the parameter.
	fn := prog.Func("f")
	if !cminor.HasQual(fn.Params[0].Type, "pos") {
		t.Errorf("user annotation lost: %s", fn.Params[0].Type)
	}
}

func TestInferNeverIntroducesWarnings(t *testing.T) {
	// Inference on a program that checks cleanly keeps it clean.
	reg := quals.MustStandard()
	src := `
int pos gcd(int pos n, int pos m);
int pos lcm(int pos a, int pos b) {
  int pos d;
  d = gcd(a, b);
  int pos prod = a * b;
  return (int pos) (prod / d);
}
`
	prog, err := cminor.Parse("lcm.c", src, reg.Names())
	if err != nil {
		t.Fatal(err)
	}
	before := Check(prog, reg)
	if len(before.Diags) != 0 {
		t.Fatalf("baseline not clean: %v", before.Diags)
	}
	if _, err := Infer(prog, reg, []string{"pos", "neg", "nonzero"}); err != nil {
		t.Fatal(err)
	}
	after := Check(prog, reg)
	for _, d := range after.Diags {
		t.Errorf("inference introduced: %s", d)
	}
}

func TestInferReducesAnnotationBurden(t *testing.T) {
	// The section 8 motivation: a program that FAILS to check without
	// manual annotations checks cleanly after inference.
	reg := quals.MustStandard()
	src := `
int pos area(int pos w, int pos h);
void f() {
  int w = 3;
  int h = 4;
  int a;
  a = area(w, h);
}
`
	prog, err := cminor.Parse("area.c", src, reg.Names())
	if err != nil {
		t.Fatal(err)
	}
	before := Check(prog, reg)
	if len(before.Errors("qual")) == 0 {
		t.Fatal("expected missing-qualifier warnings before inference")
	}
	prog2, err := cminor.Parse("area.c", src, reg.Names())
	if err != nil {
		t.Fatal(err)
	}
	inferred, err := Infer(prog2, reg, []string{"pos"})
	if err != nil {
		t.Fatal(err)
	}
	if len(inferred) == 0 {
		t.Fatal("nothing inferred")
	}
	after := Check(prog2, reg)
	for _, d := range after.Diags {
		t.Errorf("after inference: %s", d)
	}
}

func TestInferRejectsRefQualifiers(t *testing.T) {
	reg := quals.MustStandard()
	prog, err := cminor.Parse("t.c", "void f() { }", reg.Names())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Infer(prog, reg, []string{"unique"}); err == nil || !strings.Contains(err.Error(), "reference qualifier") {
		t.Errorf("expected rejection of reference qualifiers, got %v", err)
	}
}

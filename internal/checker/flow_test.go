package checker

import (
	"testing"

	"repro/internal/cminor"
	"repro/internal/interp"
	"repro/internal/quals"
)

func runFlow(t *testing.T, src string) (*Result, *Result) {
	t.Helper()
	reg := quals.MustStandard()
	parse := func() *cminor.Program {
		prog, err := cminor.Parse("test.c", src, reg.Names())
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return prog
	}
	insens := CheckWith(parse(), reg, Options{FlowSensitive: false})
	sens := CheckWith(parse(), reg, Options{FlowSensitive: true})
	return insens, sens
}

// The paper's section 6.1 imprecision example: the NULL test guards the
// dereference, so flow-sensitivity removes the need for a cast.
func TestFlowGrepIdiom(t *testing.T) {
	insens, sens := runFlow(t, `
struct dfa_state { int* trans; };
int f(struct dfa_state* nonnull d, int works) {
  int* t;
  t = (d->trans) + works;
  if (t != NULL) {
    return *t;
  }
  return 0;
}
`)
	if len(insens.Errors("restrict")) == 0 {
		t.Error("flow-insensitive checking should require a cast here")
	}
	if len(sens.Diags) != 0 {
		t.Errorf("flow-sensitive checking should be clean: %v", sens.Diags)
	}
}

func TestFlowElseBranch(t *testing.T) {
	_, sens := runFlow(t, `
int f(int* p) {
  if (p == NULL) {
    return 0;
  } else {
    return *p;
  }
}
`)
	if len(sens.Diags) != 0 {
		t.Errorf("else-branch refinement failed: %v", sens.Diags)
	}
}

func TestFlowEarlyReturn(t *testing.T) {
	_, sens := runFlow(t, `
int f(int* p) {
  if (p == NULL) {
    return 0;
  }
  return *p;
}
`)
	if len(sens.Diags) != 0 {
		t.Errorf("early-return refinement failed: %v", sens.Diags)
	}
}

func TestFlowTruthinessTest(t *testing.T) {
	_, sens := runFlow(t, `
int f(int* p) {
  if (p) {
    return *p;
  }
  return 0;
}
`)
	if len(sens.Diags) != 0 {
		t.Errorf("truthiness refinement failed: %v", sens.Diags)
	}
}

func TestFlowIntegerRefinement(t *testing.T) {
	// x > 0 implies pos; x > 5 implies pos too; x >= 0 does not.
	_, sens := runFlow(t, `
void f(int x) {
  if (x > 0) {
    int pos a = x;
  }
  if (x > 5) {
    int pos b = x;
    int nonzero c = x;
  }
  if (x != 0) {
    int nonzero d = x;
  }
  if (x < 0) {
    int neg e = x;
  }
}
`)
	if len(sens.Diags) != 0 {
		t.Errorf("integer refinements failed: %v", sens.Diags)
	}
	insens, sens2 := runFlow(t, `
void f(int x) {
  if (x >= 0) {
    int pos a = x;
  }
}
`)
	_ = insens
	if len(sens2.Errors("qual")) == 0 {
		t.Error("x >= 0 must NOT refine to pos (x could be 0)")
	}
}

func TestFlowConjunction(t *testing.T) {
	_, sens := runFlow(t, `
int f(int* p, int* q) {
  if (p != NULL && q != NULL) {
    return *p + *q;
  }
  return 0;
}
`)
	if len(sens.Diags) != 0 {
		t.Errorf("conjunction refinement failed: %v", sens.Diags)
	}
}

func TestFlowNegatedDisjunction(t *testing.T) {
	// !(p == NULL || q == NULL) refines both in the then-branch.
	_, sens := runFlow(t, `
int f(int* p, int* q) {
  if (!(p == NULL || q == NULL)) {
    return *p + *q;
  }
  return 0;
}
`)
	if len(sens.Diags) != 0 {
		t.Errorf("negated-disjunction refinement failed: %v", sens.Diags)
	}
}

func TestFlowKilledByAssignment(t *testing.T) {
	// Reassigning p inside the branch invalidates the refinement.
	_, sens := runFlow(t, `
int* unsafe_source();
int f(int* p) {
  if (p != NULL) {
    p = unsafe_source();
    return *p;
  }
  return 0;
}
`)
	if len(sens.Errors("restrict")) == 0 {
		t.Error("refinement must be killed by reassignment")
	}
}

func TestFlowGlobalKilledByCall(t *testing.T) {
	// A call may reassign the global; the refinement must not survive it.
	_, sens := runFlow(t, `
int* g;
void mutate();
int f() {
  if (g != NULL) {
    mutate();
    return *g;
  }
  return 0;
}
`)
	if len(sens.Errors("restrict")) == 0 {
		t.Error("global refinement must be killed by a call")
	}
}

func TestFlowLocalSurvivesCall(t *testing.T) {
	// A local whose address is never taken cannot be changed by a call.
	_, sens := runFlow(t, `
void log_it();
int f(int* p) {
  if (p != NULL) {
    log_it();
    return *p;
  }
  return 0;
}
`)
	if len(sens.Diags) != 0 {
		t.Errorf("local refinement should survive calls: %v", sens.Diags)
	}
}

func TestFlowAddressTakenNotRefined(t *testing.T) {
	// p's address escapes; the refinement would be unsound.
	_, sens := runFlow(t, `
void fill(int** pp);
int f() {
  int* p;
  fill(&p);
  if (p != NULL) {
    fill(&p);
    return *p;
  }
  return 0;
}
`)
	if len(sens.Errors("restrict")) == 0 {
		t.Error("address-taken variables must not be refined")
	}
}

func TestFlowLoopConditionNotRefined(t *testing.T) {
	// The body may invalidate the loop test; no refinement from while.
	_, sens := runFlow(t, `
int* next();
int f(int* p) {
  int s = 0;
  while (p != NULL) {
    s = s + *p;
    p = next();
  }
  return s;
}
`)
	if len(sens.Errors("restrict")) == 0 {
		t.Error("loop conditions must not refine (body reassigns p)")
	}
}

func TestFlowRefinementScopedToBranch(t *testing.T) {
	// The refinement must not leak past the branch.
	_, sens := runFlow(t, `
int f(int* p) {
  int s = 0;
	if (p != NULL) {
    s = *p;
  }
  return s + *p;
}
`)
	if len(sens.Errors("restrict")) == 0 {
		t.Error("refinement leaked out of the branch")
	}
}

func TestFlowOffByDefault(t *testing.T) {
	reg := quals.MustStandard()
	prog, err := cminor.Parse("t.c", `
int f(int* p) {
  if (p != NULL) {
    return *p;
  }
  return 0;
}
`, reg.Names())
	if err != nil {
		t.Fatal(err)
	}
	res := Check(prog, reg)
	if len(res.Errors("restrict")) == 0 {
		t.Error("Check (default) must remain flow-insensitive, as in the paper")
	}
}

// TestFlowDynamicSoundness: a program accepted only under flow-sensitive
// checking still satisfies its invariants at run time — the refinement is
// not just permissive, it is justified.
func TestFlowDynamicSoundness(t *testing.T) {
	reg := quals.MustStandard()
	src := `
int main() {
  int x = 3 - 8;
  int y = x * x;
  if (y > 0) {
    int pos p = y;
    if (p <= 0) { return 1; }
  }
  int* q = NULL;
  int cell = 5;
  if (q == NULL) {
    q = &cell;
  }
  if (q != NULL) {
    int deref = *q;
    if (deref != 5) { return 2; }
  }
  return 0;
}
`
	prog, err := cminor.Parse("dyn.c", src, reg.Names())
	if err != nil {
		t.Fatal(err)
	}
	res := CheckWith(prog, reg, Options{FlowSensitive: true})
	for _, d := range res.Diags {
		t.Fatalf("flow-sensitive check failed: %s", d)
	}
	prog2, err := cminor.Parse("dyn.c", src, reg.Names())
	if err != nil {
		t.Fatal(err)
	}
	out, err := interp.Run(prog2, reg, interp.Options{RuntimeChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Exit != 0 {
		t.Errorf("invariant guard %d fired at run time", out.Exit)
	}
}

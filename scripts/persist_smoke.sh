#!/bin/sh
# persist-smoke: durable-cache end-to-end gate (make persist-smoke).
#
# Runs the real qualcheck binary twice against the same -cache-dir over a
# generated corpus and asserts the durability contract:
#
#   1. Run 2 is served (almost) entirely from the disk cache — every
#      function a disk hit, zero re-walks — with byte-identical diagnostics
#      to run 1.
#   2. A deliberately corrupted record is detected on the next cold start,
#      evicted, and re-proved: diagnostics still byte-identical, corrupt
#      eviction counted, never a wrong or missing verdict.
set -eu

N=${PERSIST_SMOKE_FILES:-120}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/qualcheck" ./cmd/qualcheck
go run ./cmd/gentree -o "$tmp/corpus" -n "$N" -seed 1 >/dev/null

# run <outfile>: qualcheck -r with the shared cache dir; -cache-stats lines
# land in the stats file, diagnostics in the out file. Exit 1 (warnings) is
# the expected verdict on this corpus; >=2 is a real failure.
run() {
	rc=0
	"$tmp/qualcheck" -r "$tmp/corpus" -cache-dir "$tmp/cache" -cache-stats >"$tmp/raw" 2>"$tmp/err" || rc=$?
	if [ "$rc" -gt 1 ]; then
		echo "persist-smoke: qualcheck failed (exit $rc):" >&2
		cat "$tmp/err" >&2
		exit 1
	fi
	grep -v '^function cache:\|^disk cache:\|^'"$tmp"'/corpus:' "$tmp/raw" >"$1" || true
	grep '^disk cache:' "$tmp/raw"
}

stats1=$(run "$tmp/out1.txt")
stats2=$(run "$tmp/out2.txt")

if ! cmp -s "$tmp/out1.txt" "$tmp/out2.txt"; then
	echo "persist-smoke: FAIL: cold and disk-warm diagnostics differ:" >&2
	diff "$tmp/out1.txt" "$tmp/out2.txt" | head -20 >&2
	exit 1
fi

# Run 1 must have written records; run 2 must have read them back with no
# misses (every function served from disk) and no corruption.
puts1=$(echo "$stats1" | sed -n 's/.* \([0-9]*\) puts.*/\1/p')
hits2=$(echo "$stats2" | sed -n 's/disk cache: \([0-9]*\) hits.*/\1/p')
misses2=$(echo "$stats2" | sed -n 's/.* \([0-9]*\) misses.*/\1/p')
if [ "${puts1:-0}" -eq 0 ]; then
	echo "persist-smoke: FAIL: run 1 persisted nothing ($stats1)" >&2
	exit 1
fi
if [ "${hits2:-0}" -eq 0 ] || [ "${misses2:-1}" -ne 0 ]; then
	echo "persist-smoke: FAIL: run 2 not fully disk-warm ($stats2)" >&2
	exit 1
fi

# Corrupt one committed record (truncate to half), then prove the next cold
# start self-heals: the record is evicted and re-proved, diagnostics
# byte-identical to the clean runs.
victim=$(ls "$tmp/cache/func/"*.qc | head -1)
size=$(wc -c <"$victim")
truncate_to=$((size / 2))
dd if="$victim" of="$victim.cut" bs=1 count="$truncate_to" 2>/dev/null
mv "$victim.cut" "$victim"

stats3=$(run "$tmp/out3.txt")
if ! cmp -s "$tmp/out1.txt" "$tmp/out3.txt"; then
	echo "persist-smoke: FAIL: post-corruption diagnostics differ:" >&2
	diff "$tmp/out1.txt" "$tmp/out3.txt" | head -20 >&2
	exit 1
fi
corrupt3=$(echo "$stats3" | sed -n 's/.* \([0-9]*\) corrupt evicted.*/\1/p')
if [ "${corrupt3:-0}" -eq 0 ]; then
	echo "persist-smoke: FAIL: corrupted record was not detected ($stats3)" >&2
	exit 1
fi

echo "persist-smoke: OK: $N files; run2 fully disk-warm ($stats2); corrupted record evicted and re-proved ($stats3)"

#!/bin/sh
# tree-smoke: repo-scale checking equivalence + speedup gate (make tree-smoke).
#
# Generates a synthetic ~500-file corpus with gentree, runs `qualcheck -r`
# serially (-j 1) and at -j NumCPU, and asserts the two runs' stdout is
# byte-identical — the determinism contract of the work-stealing scheduler.
# When the machine has enough cores for a meaningful floor (min(4, NumCPU/2)
# >= 1) the parallel run must also clear that wall-clock speedup floor; on
# smaller boxes only the equivalence half is asserted, since a sub-1x floor
# says nothing.
set -eu

N=${TREE_SMOKE_FILES:-500}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/qualcheck" ./cmd/qualcheck
go run ./cmd/gentree -o "$tmp/corpus" -n "$N" -seed 1 >/dev/null

# run <jobs> <outfile>: prints elapsed wall-clock ms. Exit 1 (warnings found)
# is the expected verdict on this corpus; >=2 is a real failure.
run() {
	start=$(date +%s%N)
	rc=0
	"$tmp/qualcheck" -r "$tmp/corpus" -j "$1" >"$2" 2>"$tmp/err" || rc=$?
	end=$(date +%s%N)
	if [ "$rc" -gt 1 ]; then
		echo "tree-smoke: qualcheck -j $1 failed (exit $rc):" >&2
		cat "$tmp/err" >&2
		exit 1
	fi
	echo $(( (end - start) / 1000000 ))
}

ncpu=$(nproc 2>/dev/null || echo 1)
t1=$(run 1 "$tmp/out_j1.txt")
tn=$(run "$ncpu" "$tmp/out_jn.txt")

if ! cmp -s "$tmp/out_j1.txt" "$tmp/out_jn.txt"; then
	echo "tree-smoke: FAIL: -j 1 and -j $ncpu diagnostics differ:" >&2
	diff "$tmp/out_j1.txt" "$tmp/out_jn.txt" | head -20 >&2
	exit 1
fi

floor=$((ncpu / 2))
[ "$floor" -gt 4 ] && floor=4
speedup=$(awk "BEGIN { printf \"%.2f\", $t1 / ($tn > 0 ? $tn : 1) }")
if [ "$floor" -ge 1 ]; then
	# Integer-ms comparison: t1 >= floor * tn  <=>  speedup >= floor.
	if [ "$t1" -lt $((floor * tn)) ]; then
		echo "tree-smoke: FAIL: -j $ncpu speedup ${speedup}x below the ${floor}x floor (j1=${t1}ms, j$ncpu=${tn}ms)" >&2
		exit 1
	fi
	echo "tree-smoke: OK: $N files byte-identical at -j 1 and -j $ncpu; speedup ${speedup}x (floor ${floor}x; j1=${t1}ms, j$ncpu=${tn}ms)"
else
	echo "tree-smoke: OK: $N files byte-identical at -j 1 and -j $ncpu; speedup floor skipped (min(4, NumCPU/2) < 1 on $ncpu CPU; j1=${t1}ms, j$ncpu=${tn}ms, ${speedup}x)"
fi

// Command gentree generates the synthetic multi-file source tree used by
// `make tree-smoke` and ad-hoc repo-scale checking experiments: n files of
// deterministic cminor source (plus vendor/testdata decoys the walker must
// skip) under the output directory.
//
// Usage:
//
//	gentree -o dir [-n 500] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
)

func main() {
	out := flag.String("o", "", "output directory (required)")
	n := flag.Int("n", 500, "number of source files")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	paths, err := corpus.WriteTree(*out, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gentree:", err)
		os.Exit(1)
	}
	fmt.Printf("gentree: wrote %d files under %s\n", len(paths), *out)
}

// Command experiments regenerates every table of the paper's evaluation:
//
//	-table 1   Table 1: the nonnull experiment on grep's dfa
//	-table 2   Table 2: the untainted experiment on bftpd/mingetty/identd
//	-table 3   Section 6.2: uniqueness of the dfa global
//	-table 4   Section 4: automated soundness checking times
//	-table 5   Section 6: qualifier-checking (compile-time) overhead
//	-table 6   Sections 2.1.3/2.2.3: broken rules caught by the checker
//	-table 7   Section 8 extension: qualifier inference
//	-table 8   Section 8 extension: flow-sensitive refinement
//
// Without -table, all experiments run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "run a single experiment (1-6); 0 runs all")
	timeout := flag.Duration("timeout", 0, "per-goal wall-clock budget for prover-backed experiments (0 = prover default)")
	flag.Parse()

	// Ctrl-C / SIGTERM cancels in-flight proof searches in the prover-backed
	// experiments (tables 4 and 6).
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		experiments.SetGoalTimeout(*timeout)
	}

	run := func(n int) bool { return *table == 0 || *table == n }
	failed := false

	if run(1) {
		r, err := experiments.Table1()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatTable1(r))
	}
	if run(2) {
		rows, err := experiments.Table2()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatTable2(rows))
	}
	if run(3) {
		r, err := experiments.Uniqueness()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatUniqueness(r))
		if !r.PassByArgRejected || r.Errors != 0 {
			failed = true
		}
	}
	if run(4) {
		rows, err := experiments.ProverTimesContext(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatProverTimes(rows))
		for _, r := range rows {
			if !r.Sound || r.Elapsed >= r.Bound {
				failed = true
			}
		}
	}
	if run(5) {
		rows, err := experiments.CheckTimes()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatCheckTimes(rows))
	}
	if run(6) {
		rows, err := experiments.MutationsContext(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatMutations(rows))
		for _, r := range rows {
			if !r.Caught {
				failed = true
			}
		}
		s := experiments.ProverCacheStats()
		fmt.Printf("shared prover cache across experiments: %d hits, %d misses, %d evictions (%.1f%% hit rate)\n\n",
			s.Hits, s.Misses, s.Evictions, 100*s.HitRate())
	}
	if run(7) {
		r, err := experiments.Inference()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatInference(r))
		if r.WarningsAfter != 0 {
			failed = true
		}
	}
	if run(8) {
		r, err := experiments.Flow()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatFlow(r))
		if r.WarningsSensitive != 0 {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(2)
}

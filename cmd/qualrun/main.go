// Command qualrun executes a cminor program under the instrumented
// interpreter: casts to value-qualified types carry run-time checks of the
// qualifier's invariant (section 2.1.3), and a failed check is a fatal
// error.
//
// Usage:
//
//	qualrun [-quals file.qdl ...] [-taint] [-nochecks] program.c
//	qualrun -corpus grep-dfa|bftpd|bftpd-exploit|bftpd-fixed|mingetty|identd
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cminor"
	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/qdl"
	"repro/internal/quals"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var qualFiles stringList
	flag.Var(&qualFiles, "quals", "qualifier definition file (repeatable; default: standard library)")
	taint := flag.Bool("taint", false, "use the taintedness configuration")
	noChecks := flag.Bool("nochecks", false, "disable instrumented qualifier checks")
	corpusName := flag.String("corpus", "", "run a built-in corpus program")
	flag.Parse()

	var reg *qdl.Registry
	var err error
	switch {
	case len(qualFiles) > 0:
		sources := map[string]string{}
		for _, f := range qualFiles {
			data, rerr := os.ReadFile(f)
			if rerr != nil {
				fatal(rerr)
			}
			sources[f] = string(data)
		}
		reg, err = qdl.Load(sources)
	case *taint:
		reg, err = quals.TaintWithConstants()
	default:
		reg, err = quals.Standard()
	}
	if err != nil {
		fatal(err)
	}

	var name, source string
	switch {
	case *corpusName != "":
		found := false
		for _, p := range append(corpus.All(), corpus.BftpdFixed(), corpus.BftpdExploit()) {
			if p.Name == *corpusName {
				name, source, found = p.Name+".c", p.Source, true
			}
		}
		if !found {
			fatal(fmt.Errorf("unknown corpus program %q", *corpusName))
		}
	case flag.NArg() == 1:
		data, rerr := os.ReadFile(flag.Arg(0))
		if rerr != nil {
			fatal(rerr)
		}
		name, source = flag.Arg(0), string(data)
	default:
		flag.Usage()
		os.Exit(2)
	}

	prog, err := cminor.Parse(name, source, reg.Names())
	if err != nil {
		fatal(err)
	}
	res, err := interp.Run(prog, reg, interp.Options{
		Stdout:        os.Stdout,
		RuntimeChecks: !*noChecks,
	})
	if err != nil {
		fatal(err)
	}
	if res.Failure != nil {
		fmt.Fprintln(os.Stderr, res.Failure.Error())
		os.Exit(134)
	}
	os.Exit(int(res.Exit))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qualrun:", err)
	os.Exit(2)
}

// Command benchjson converts `go test -bench` output into a stable JSON
// document, optionally joining it against a baseline run of the same
// benchmarks to compute per-benchmark and per-family geomean speedups. The
// repo's `make bench` target pipes the prover benchmark suite through it to
// produce BENCH_prover.json, the committed performance record.
//
// With -prev pointing at the previously committed document, the new document
// carries a "history" array: the prior run's summary (note, benchmark count,
// overall and per-family geomeans) is appended to the prior history, so
// BENCH_prover.json keeps the PR-over-PR trajectory, not just the latest
// snapshot. -max-regress turns the same comparison into a CI gate: if the
// current overall geomean falls more than the given fraction below the
// previous document's, benchjson exits nonzero (`make bench-smoke` uses this
// with 0.10).
//
// Usage:
//
//	go test -bench . -count 3 . | benchjson -baseline old.txt -o BENCH.json
//	go test -bench . -benchtime 1x . | benchjson -baseline old.txt \
//	    -prev BENCH.json -max-regress 0.10 >/dev/null
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// run is one benchmark line's measurements.
type run struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasMem      bool
}

// gomaxprocsSuffix strips the "-8"-style GOMAXPROCS suffix go test appends
// to benchmark names on multi-core runs.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts per-name runs from go test -bench output, ignoring
// headers, PASS/ok trailers, and custom ReportMetric columns.
func parseBench(r io.Reader) (map[string][]run, []string, error) {
	runs := map[string][]run{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		rn := run{nsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				rn.bytesPerOp = v
				rn.hasMem = true
			case "allocs/op":
				rn.allocsPerOp = v
				rn.hasMem = true
			}
		}
		if _, seen := runs[name]; !seen {
			order = append(order, name)
		}
		runs[name] = append(runs[name], rn)
	}
	return runs, order, sc.Err()
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func geomean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// round2 keeps the JSON readable: two decimals is plenty for speedups.
func round2(x float64) float64 { return math.Round(x*100) / 100 }

// benchEntry is one benchmark's JSON record.
type benchEntry struct {
	Name              string    `json:"name"`
	RunsNsPerOp       []float64 `json:"runs_ns_per_op"`
	MeanNsPerOp       float64   `json:"mean_ns_per_op"`
	BytesPerOp        *float64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp       *float64  `json:"allocs_per_op,omitempty"`
	BaselineNsPerOp   *float64  `json:"baseline_mean_ns_per_op,omitempty"`
	SpeedupVsBaseline *float64  `json:"speedup_vs_baseline,omitempty"`
}

// familyEntry aggregates speedups over a top-level benchmark family (the
// name up to the first '/').
type familyEntry struct {
	Name           string  `json:"name"`
	Benchmarks     int     `json:"benchmarks"`
	GeomeanSpeedup float64 `json:"geomean_speedup_vs_baseline"`
}

// historyEntry is one prior run's summary, kept when the document is
// rewritten so the committed record preserves the PR-over-PR trajectory.
type historyEntry struct {
	Note           string        `json:"note,omitempty"`
	Benchmarks     int           `json:"benchmarks"`
	Families       []familyEntry `json:"families,omitempty"`
	GeomeanSpeedup *float64      `json:"geomean_speedup_vs_baseline,omitempty"`
}

// maxHistory bounds the trajectory so the committed JSON cannot grow without
// limit; the oldest entries age out first.
const maxHistory = 20

type doc struct {
	Note           string         `json:"note"`
	Benchmarks     []benchEntry   `json:"benchmarks"`
	Families       []familyEntry  `json:"families,omitempty"`
	GeomeanSpeedup *float64       `json:"geomean_speedup_vs_baseline,omitempty"`
	History        []historyEntry `json:"history,omitempty"`
}

func family(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	baselinePath := flag.String("baseline", "", "prior go test -bench output to compute speedups against")
	note := flag.String("note", "", "free-form provenance note stored in the document")
	prevPath := flag.String("prev", "", "previously committed benchjson document; its summary is appended to the new document's history")
	maxRegress := flag.Float64("max-regress", 0, "fail (exit 1) if the overall geomean falls more than this fraction below -prev's (0 = off)")
	flag.Parse()

	cur, order, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(cur) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	base := map[string][]run{}
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fatal(err)
		}
		base, _, err = parseBench(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	d := doc{Note: *note}
	famSpeedups := map[string][]float64{}
	var allSpeedups []float64
	for _, name := range order {
		rs := cur[name]
		e := benchEntry{Name: name}
		for _, r := range rs {
			e.RunsNsPerOp = append(e.RunsNsPerOp, r.nsPerOp)
		}
		e.MeanNsPerOp = round2(mean(e.RunsNsPerOp))
		var bytesRuns, allocRuns []float64
		for _, r := range rs {
			if r.hasMem {
				bytesRuns = append(bytesRuns, r.bytesPerOp)
				allocRuns = append(allocRuns, r.allocsPerOp)
			}
		}
		if len(bytesRuns) > 0 {
			b, a := round2(mean(bytesRuns)), round2(mean(allocRuns))
			e.BytesPerOp, e.AllocsPerOp = &b, &a
		}
		if brs, ok := base[name]; ok {
			bm := mean(func() []float64 {
				xs := make([]float64, len(brs))
				for i, r := range brs {
					xs[i] = r.nsPerOp
				}
				return xs
			}())
			bmr := round2(bm)
			sp := round2(bm / mean(e.RunsNsPerOp))
			e.BaselineNsPerOp, e.SpeedupVsBaseline = &bmr, &sp
			famSpeedups[family(name)] = append(famSpeedups[family(name)], bm/mean(e.RunsNsPerOp))
			allSpeedups = append(allSpeedups, bm/mean(e.RunsNsPerOp))
		}
		d.Benchmarks = append(d.Benchmarks, e)
	}
	var fams []string
	for f := range famSpeedups {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		d.Families = append(d.Families, familyEntry{
			Name:           f,
			Benchmarks:     len(famSpeedups[f]),
			GeomeanSpeedup: round2(geomean(famSpeedups[f])),
		})
	}
	if len(allSpeedups) > 0 {
		g := round2(geomean(allSpeedups))
		d.GeomeanSpeedup = &g
	}

	if *prevPath != "" {
		prev, err := loadPrev(*prevPath)
		switch {
		case err != nil:
			// A missing previous document is the bootstrap case, not an
			// error: record nothing and (if gating) let the run pass.
			fmt.Fprintf(os.Stderr, "benchjson: no usable -prev document (%v); history and gate skipped\n", err)
		default:
			d.History = append(prev.History, historyEntry{
				Note:           prev.Note,
				Benchmarks:     len(prev.Benchmarks),
				Families:       prev.Families,
				GeomeanSpeedup: prev.GeomeanSpeedup,
			})
			if n := len(d.History); n > maxHistory {
				d.History = d.History[n-maxHistory:]
			}
			if *maxRegress > 0 {
				if err := gate(d.GeomeanSpeedup, prev.GeomeanSpeedup, *maxRegress); err != nil {
					fatal(err)
				}
			}
		}
	}

	enc, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// loadPrev reads a previously written benchjson document.
func loadPrev(path string) (*doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

// gate is the regression check: the current run's overall geomean speedup
// must not fall more than maxRegress below the previous document's. Both
// geomeans are against the same fixed -baseline file, so the ratio tracks
// real engine drift, not baseline churn.
func gate(cur, prev *float64, maxRegress float64) error {
	if prev == nil {
		fmt.Fprintln(os.Stderr, "benchjson: -prev document has no geomean; gate skipped")
		return nil
	}
	if cur == nil {
		return fmt.Errorf("regression gate: current run has no geomean (baseline missing?) but -prev records %.2fx", *prev)
	}
	floor := *prev * (1 - maxRegress)
	if *cur < floor {
		return fmt.Errorf("regression gate: geomean speedup %.2fx is below %.2fx (previous %.2fx - %.0f%%)",
			*cur, floor, *prev, 100*maxRegress)
	}
	fmt.Fprintf(os.Stderr, "benchjson: regression gate ok: %.2fx vs previous %.2fx (floor %.2fx)\n", *cur, *prev, floor)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// Command benchjson converts `go test -bench` output into a stable JSON
// document, optionally joining it against a baseline run of the same
// benchmarks to compute per-benchmark and per-family geomean speedups. The
// repo's `make bench` target pipes the prover benchmark suite through it to
// produce BENCH_prover.json, the committed performance record.
//
// Usage:
//
//	go test -bench . -count 3 . | benchjson -baseline old.txt -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// run is one benchmark line's measurements.
type run struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasMem      bool
}

// gomaxprocsSuffix strips the "-8"-style GOMAXPROCS suffix go test appends
// to benchmark names on multi-core runs.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts per-name runs from go test -bench output, ignoring
// headers, PASS/ok trailers, and custom ReportMetric columns.
func parseBench(r io.Reader) (map[string][]run, []string, error) {
	runs := map[string][]run{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		rn := run{nsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				rn.bytesPerOp = v
				rn.hasMem = true
			case "allocs/op":
				rn.allocsPerOp = v
				rn.hasMem = true
			}
		}
		if _, seen := runs[name]; !seen {
			order = append(order, name)
		}
		runs[name] = append(runs[name], rn)
	}
	return runs, order, sc.Err()
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func geomean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// round2 keeps the JSON readable: two decimals is plenty for speedups.
func round2(x float64) float64 { return math.Round(x*100) / 100 }

// benchEntry is one benchmark's JSON record.
type benchEntry struct {
	Name              string    `json:"name"`
	RunsNsPerOp       []float64 `json:"runs_ns_per_op"`
	MeanNsPerOp       float64   `json:"mean_ns_per_op"`
	BytesPerOp        *float64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp       *float64  `json:"allocs_per_op,omitempty"`
	BaselineNsPerOp   *float64  `json:"baseline_mean_ns_per_op,omitempty"`
	SpeedupVsBaseline *float64  `json:"speedup_vs_baseline,omitempty"`
}

// familyEntry aggregates speedups over a top-level benchmark family (the
// name up to the first '/').
type familyEntry struct {
	Name           string  `json:"name"`
	Benchmarks     int     `json:"benchmarks"`
	GeomeanSpeedup float64 `json:"geomean_speedup_vs_baseline"`
}

type doc struct {
	Note           string        `json:"note"`
	Benchmarks     []benchEntry  `json:"benchmarks"`
	Families       []familyEntry `json:"families,omitempty"`
	GeomeanSpeedup *float64      `json:"geomean_speedup_vs_baseline,omitempty"`
}

func family(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	baselinePath := flag.String("baseline", "", "prior go test -bench output to compute speedups against")
	note := flag.String("note", "", "free-form provenance note stored in the document")
	flag.Parse()

	cur, order, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(cur) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	base := map[string][]run{}
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fatal(err)
		}
		base, _, err = parseBench(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	d := doc{Note: *note}
	famSpeedups := map[string][]float64{}
	var allSpeedups []float64
	for _, name := range order {
		rs := cur[name]
		e := benchEntry{Name: name}
		for _, r := range rs {
			e.RunsNsPerOp = append(e.RunsNsPerOp, r.nsPerOp)
		}
		e.MeanNsPerOp = round2(mean(e.RunsNsPerOp))
		var bytesRuns, allocRuns []float64
		for _, r := range rs {
			if r.hasMem {
				bytesRuns = append(bytesRuns, r.bytesPerOp)
				allocRuns = append(allocRuns, r.allocsPerOp)
			}
		}
		if len(bytesRuns) > 0 {
			b, a := round2(mean(bytesRuns)), round2(mean(allocRuns))
			e.BytesPerOp, e.AllocsPerOp = &b, &a
		}
		if brs, ok := base[name]; ok {
			bm := mean(func() []float64 {
				xs := make([]float64, len(brs))
				for i, r := range brs {
					xs[i] = r.nsPerOp
				}
				return xs
			}())
			bmr := round2(bm)
			sp := round2(bm / mean(e.RunsNsPerOp))
			e.BaselineNsPerOp, e.SpeedupVsBaseline = &bmr, &sp
			famSpeedups[family(name)] = append(famSpeedups[family(name)], bm/mean(e.RunsNsPerOp))
			allSpeedups = append(allSpeedups, bm/mean(e.RunsNsPerOp))
		}
		d.Benchmarks = append(d.Benchmarks, e)
	}
	var fams []string
	for f := range famSpeedups {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		d.Families = append(d.Families, familyEntry{
			Name:           f,
			Benchmarks:     len(famSpeedups[f]),
			GeomeanSpeedup: round2(geomean(famSpeedups[f])),
		})
	}
	if len(allSpeedups) > 0 {
		g := round2(geomean(allSpeedups))
		d.GeomeanSpeedup = &g
	}

	enc, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

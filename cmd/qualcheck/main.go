// Command qualcheck is the extensible typechecker's CLI (the counterpart of
// the paper's CIL module): it loads qualifier definitions, typechecks a
// cminor program against their type rules, and prints any warnings.
//
// Usage:
//
//	qualcheck [-quals file.qdl ...] [-taint] [-stats] program.c
//	qualcheck -corpus grep-dfa|bftpd|bftpd-fixed|mingetty|identd [-stats]
//	qualcheck -r dir [-j N] [-stats] [-cache-dir dir] [-cache-budget N]
//	qualcheck -watch dir [-debounce d] [-poll d] [-j N] [-cache-dir dir]
//
// With -r, qualcheck checks every .c file under the directory tree
// (skipping vendor/, testdata/, and hidden directories) over a work-stealing
// scheduler bounded by -j. Diagnostics are printed in deterministic
// path/line order regardless of the worker count.
//
// With -cache-dir, the function-result cache is persisted to disk as
// checksummed, crash-safe records, so a later run (or a -watch daemon
// restarted after a crash) starts warm instead of re-walking every
// function. Corrupt or torn records are detected, evicted, and re-proved —
// never trusted. -cache-budget bounds the directory's size in bytes; the
// least recently used records are evicted past it.
//
// With -watch, qualcheck becomes a resident incremental checker: one full
// tree pass, then re-checking only what changes, pushing diagnostics as
// JSONL events on stdout. Changes are detected via fs notifications
// debounced by -debounce, or by rescanning every -poll when set (or when
// notifications are unavailable). SIGUSR1 pushes a stats event; Ctrl-C
// exits cleanly with a final stats event.
//
// Without -quals, the standard qualifier library (pos, neg, nonzero,
// nonnull, tainted, untainted, unique, unaliased) is loaded; -taint loads
// the section 6.3 taintedness configuration instead (untainted with the
// constants-are-trusted clause, plus tainted).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/cachedisk"
	"repro/internal/checker"
	"repro/internal/cminor"
	"repro/internal/corpus"
	"repro/internal/input"
	"repro/internal/profiling"
	"repro/internal/qdl"
	"repro/internal/quals"
	"repro/internal/watch"
)

// stopProfiles flushes any active pprof profiles; set once in main, and
// called on every exit path (deferred calls do not survive os.Exit).
var stopProfiles = func() {}

// exit flushes profiles and terminates with the given status.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var qualFiles stringList
	flag.Var(&qualFiles, "quals", "qualifier definition file (repeatable; default: standard library)")
	taint := flag.Bool("taint", false, "use the taintedness configuration (untainted with constant case, tainted)")
	stats := flag.Bool("stats", false, "print checking statistics")
	corpusName := flag.String("corpus", "", "check a built-in corpus program instead of a file")
	infer := flag.String("infer", "", "comma-separated value qualifiers to infer before checking (section 8 extension)")
	flow := flag.Bool("flow", false, "enable flow-sensitive refinement of branch conditions (section 8 extension)")
	header := flag.String("header", "", "prepend alternate library signatures from this file (section 3.3's header replacement)")
	jobs := flag.Int("j", 0, "number of functions checked concurrently (default: all cores)")
	treeRoot := flag.String("r", "", "check every .c file under this directory tree instead of one file")
	watchDir := flag.String("watch", "", "run as a resident incremental checker over this directory tree (JSONL events on stdout)")
	debounce := flag.Duration("debounce", watch.DefaultDebounce, "with -watch: quiet window before a change burst is re-checked")
	poll := flag.Duration("poll", 0, "with -watch: rescan interval replacing fs notifications (0 = use notifications)")
	maxFiles := flag.Int("max-files", 0, "with -r/-watch: stop the walk after this many files (0 = unlimited)")
	cacheDir := flag.String("cache-dir", "", "with -r/-watch: persist the function cache under this directory so later runs start warm")
	cacheBudget := flag.Int64("cache-budget", 0, "with -cache-dir: total record bytes kept on disk before LRU eviction (0 = default 256 MiB)")
	cacheStats := flag.Bool("cache-stats", false, "print derivation-memo cache statistics after checking")
	timeout := flag.Duration("timeout", 0, "overall wall-clock budget for the check; 0 means unlimited")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	stop, perr := profiling.Start(*cpuprofile, *memprofile)
	if perr != nil {
		fatal(perr)
	}
	stopProfiles = stop
	defer stopProfiles()

	// Ctrl-C / SIGTERM (and -timeout) cut the function walk short; the run
	// then reports what it has and exits non-zero as inconclusive.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}

	reg, err := loadRegistry(qualFiles, *taint)
	if err != nil {
		fatal(err)
	}

	if *watchDir != "" {
		runWatch(ctx, *watchDir, reg, watch.Options{
			Checker:  checker.Options{FlowSensitive: *flow},
			Walk:     input.WalkOptions{MaxFiles: *maxFiles},
			Workers:  *jobs,
			Seed:     1,
			Debounce: *debounce,
			Poll:     *poll,
			Cache:    openFuncCache(*cacheDir, *cacheBudget),
		})
		return
	}
	if *treeRoot != "" {
		runTree(ctx, *treeRoot, reg, *jobs, *flow, *stats, *cacheStats, *maxFiles, *cacheDir, *cacheBudget)
		return
	}

	var name, source string
	switch {
	case *corpusName != "":
		p, ok := findCorpus(*corpusName)
		if !ok {
			fatal(fmt.Errorf("unknown corpus program %q", *corpusName))
		}
		name, source = p.Name+".c", p.Source
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		name, source = flag.Arg(0), string(data)
	default:
		flag.Usage()
		exit(2)
	}

	if *header != "" {
		data, err := os.ReadFile(*header)
		if err != nil {
			fatal(err)
		}
		// Annotated library prototypes come first so they take precedence
		// over the program's own unannotated declarations.
		source = string(data) + "\n" + source
	}
	prog, err := cminor.Parse(name, source, reg.Names())
	if err != nil {
		fatal(err)
	}
	if *infer != "" {
		inferred, err := checker.Infer(prog, reg, strings.Split(*infer, ","))
		if err != nil {
			fatal(err)
		}
		for _, a := range inferred {
			fmt.Println("inferred:", a)
		}
	}
	start := time.Now()
	res := checker.CheckWithContext(ctx, prog, reg, checker.Options{FlowSensitive: *flow, Concurrency: *jobs})
	for _, d := range res.Diags {
		fmt.Println(d)
	}
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "qualcheck: check stopped after %v: %v (results are incomplete)\n",
			time.Since(start).Round(time.Millisecond), res.Err)
		exit(2)
	}
	if *stats {
		printStats(res)
	}
	if *cacheStats {
		total := res.Stats.MemoHits + res.Stats.MemoMisses
		rate := 0.0
		if total > 0 {
			rate = 100 * float64(res.Stats.MemoHits) / float64(total)
		}
		fmt.Printf("derivation memo: %d hits, %d misses (%.1f%% hit rate)\n",
			res.Stats.MemoHits, res.Stats.MemoMisses, rate)
	}
	if len(res.Diags) == 0 {
		fmt.Printf("%s: no qualifier warnings\n", name)
	} else {
		fmt.Printf("%s: %d warning(s)\n", name, len(res.Diags))
		exit(1)
	}
}

// runWatch is the -watch mode: a resident daemon pushing JSONL diagnostic
// events. SIGUSR1 emits a telemetry snapshot at any time; shutdown is via
// the signal context (Ctrl-C / SIGTERM), which is a clean exit.
func runWatch(ctx context.Context, root string, reg *qdl.Registry, opts watch.Options) {
	d, err := watch.New(root, reg, opts)
	if err != nil {
		fatal(err)
	}
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	defer signal.Stop(usr1)
	go func() {
		for range usr1 {
			d.EmitStats()
		}
	}()
	if err := d.Run(ctx); err != nil && ctx.Err() == nil {
		fatal(err)
	}
}

// openFuncCache builds the function cache for -r/-watch runs, attaching the
// disk tier when -cache-dir is set. A directory that cannot be opened is a
// warning, not a failure: the run degrades to memory-only, matching the
// store's own breaker behavior for mid-run disk faults.
func openFuncCache(dir string, budget int64) *checker.FuncCache {
	fc := checker.NewFuncCache(0)
	if dir == "" {
		return fc
	}
	store, err := cachedisk.Open(filepath.Join(dir, "func"), budget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qualcheck: cache dir unusable, running memory-only: %v\n", err)
		return fc
	}
	fc.WithDisk(store)
	return fc
}

// runTree is the -r mode: repo-scale checking over the work-stealing
// scheduler. Exit status matches the single-file mode: 1 for warnings, 2 for
// read/parse failures or an interrupted run, 0 for a clean tree.
func runTree(ctx context.Context, root string, reg *qdl.Registry, jobs int, flow, stats, cacheStats bool, maxFiles int, cacheDir string, cacheBudget int64) {
	fc := openFuncCache(cacheDir, cacheBudget)
	res, err := checker.CheckTree(ctx, root, reg, checker.TreeOptions{
		Options: checker.Options{FlowSensitive: flow},
		Workers: jobs,
		Seed:    1,
		Walk:    input.WalkOptions{MaxFiles: maxFiles},
		Cache:   fc,
	})
	if err != nil {
		fatal(err)
	}
	warnings, failures := 0, 0
	for _, fr := range res.Files {
		if fr.Err != nil {
			fmt.Fprintf(os.Stderr, "qualcheck: %s: %v\n", fr.File, fr.Err)
			failures++
			continue
		}
		for _, d := range fr.Diags {
			fmt.Println(d)
			warnings++
		}
	}
	if stats {
		printTreeStats(res)
	}
	if cacheStats {
		st := fc.Stats()
		fmt.Printf("function cache: %d hits, %d misses, %d coalesced, %d evictions (%.1f%% hit rate)\n",
			st.Hits, st.Misses, st.Coalesced, st.Evictions, 100*st.HitRate())
		if cacheDir != "" {
			ds := fc.DiskStats()
			fmt.Printf("disk cache: %d hits, %d misses, %d puts, %d entries, %d bytes, %d corrupt evicted, %d budget evicted\n",
				ds.Hits, ds.Misses, ds.Puts, ds.Entries, ds.Bytes, ds.CorruptEvicted, ds.BudgetEvicted)
		}
	}
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "qualcheck: tree check stopped: %v (results are incomplete)\n", res.Err)
		exit(2)
	}
	fmt.Printf("%s: %d file(s), %d warning(s)\n", root, len(res.Files), warnings)
	switch {
	case failures > 0:
		exit(2)
	case warnings > 0:
		exit(1)
	}
}

// printTreeStats reports the run's scheduler, reader, and checking
// telemetry: the utilization profile answers "did the tree decompose", the
// steal count answers "did idle workers find the work".
func printTreeStats(res *checker.TreeResult) {
	trunc := ""
	if res.Walk.Truncated {
		trunc = " [truncated: -max-files cap hit, tree only partially checked]"
	}
	fmt.Printf("files: %d matched, %d skipped dirs, %d symlinks skipped, %d over size cap, %d vanished, %d bytes%s\n",
		res.Walk.Matched, res.Walk.SkippedDirs, res.Walk.Symlinks, res.Walk.TooLarge, res.Walk.Vanished, res.Walk.TotalBytes, trunc)
	fmt.Printf("throughput: %.1f files/s (%.3fs wall)\n", res.FilesPerSec(), res.Duration.Seconds())
	s := res.Sched
	fmt.Printf("scheduler: %d workers, %d file tasks, %d function units, %d steals, %d injector grabs, %d parks\n",
		s.Workers, s.Submitted, s.Spawned, s.Steals, s.InjectorGrabs, s.Parks)
	fmt.Printf("per-worker executed: %v\n", s.PerWorker)
	fmt.Printf("reader: %d files, %d bytes, %d pooled reuses, %d grows\n",
		res.Read.Files, res.Read.Bytes, res.Read.Reuses, res.Read.Grows)
	fmt.Printf("dereferences: %d\n", res.Stats.Dereferences)
	fmt.Printf("restrict checks: %d (%d failed)\n", res.Stats.RestrictChecks, res.Stats.RestrictFailures)
	fmt.Printf("function cache: %d hits, %d misses, %d coalesced\n",
		res.Stats.FuncCacheHits, res.Stats.FuncCacheMisses, res.Stats.FuncCacheCoalesced)
}

func loadRegistry(files stringList, taint bool) (*qdl.Registry, error) {
	if len(files) > 0 {
		sources := map[string]string{}
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				return nil, err
			}
			sources[f] = string(data)
		}
		return qdl.Load(sources)
	}
	if taint {
		return quals.TaintWithConstants()
	}
	return quals.Standard()
}

func findCorpus(name string) (corpus.Program, bool) {
	all := append(corpus.All(), corpus.BftpdFixed(), corpus.BftpdExploit())
	for _, p := range all {
		if p.Name == name {
			return p, true
		}
	}
	return corpus.Program{}, false
}

func printStats(res *checker.Result) {
	fmt.Printf("dereferences: %d\n", res.Stats.Dereferences)
	fmt.Printf("restrict checks: %d (%d failed)\n", res.Stats.RestrictChecks, res.Stats.RestrictFailures)
	keys := make([]string, 0, len(res.Stats.Annotations))
	for k := range res.Stats.Annotations {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("annotations[%s]: %d\n", k, res.Stats.Annotations[k])
	}
	keys = keys[:0]
	for k := range res.Stats.QualCasts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("casts[%s]: %d\n", k, res.Stats.QualCasts[k])
	}
	fmt.Printf("value-qualified casts to instrument: %d\n", len(res.Casts))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qualcheck:", err)
	exit(2)
}

package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/corpus"
)

// TestMain doubles as the smoke-test child: when re-executed with
// QUALCHECK_SMOKE_CHILD=1 the test binary runs the real main, so the smoke
// test exercises the shipped flag parsing, signal handling, and watch loop
// without a separate build.
func TestMain(m *testing.M) {
	if os.Getenv("QUALCHECK_SMOKE_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// smokeEvent is one decoded JSONL record from the watch child.
type smokeEvent map[string]any

func (e smokeEvent) kind() string { s, _ := e["event"].(string); return s }
func (e smokeEvent) str(k string) string {
	s, _ := e[k].(string)
	return s
}
func (e smokeEvent) num(k string) int {
	f, _ := e[k].(float64)
	return int(f)
}

// funcDefRe matches a top-level function definition line of the synthetic
// corpus (used to count how many FuncCache lookups a file costs).
var funcDefRe = regexp.MustCompile(`(?m)^(int|void) \w+\(.*\{$`)

// diagLineRe matches a batch-mode diagnostic line: file:line:col: [code] msg.
var diagLineRe = regexp.MustCompile(`^\S+:\d+:\d+: \[`)

// TestWatchSmoke is the end-to-end incremental contract: a watch daemon over
// a generated corpus tree, one edited function, and three assertions — the
// next generation re-checks exactly one file, the FuncCache miss delta is
// exactly the one edited function, and the daemon's accumulated diagnostics
// byte-match a fresh batch `qualcheck -r` of the final tree.
func TestWatchSmoke(t *testing.T) {
	dir := t.TempDir()
	rels, err := corpus.WriteTree(dir, 20, 42)
	if err != nil {
		t.Fatal(err)
	}

	// The edit target: the first file with a compute function ("return acc;"
	// appears only there), so the one-line edit below changes exactly one
	// function's content key.
	target, targetSrc := "", ""
	for _, rel := range rels {
		src, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(rel)))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(src), "return acc;") {
			target, targetSrc = rel, string(src)
			break
		}
	}
	if target == "" {
		t.Fatal("no corpus file contains a compute function")
	}
	targetFuncs := len(funcDefRe.FindAllString(targetSrc, -1))
	if targetFuncs < 2 {
		t.Fatalf("target %s has %d functions, need >= 2 for a hit/miss split", target, targetFuncs)
	}

	cmd := exec.Command(os.Args[0], "-watch", dir, "-poll", "25ms")
	cmd.Env = append(os.Environ(), "QUALCHECK_SMOKE_CHILD=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	events := make(chan smokeEvent, 4096)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var ev smokeEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err == nil {
				events <- ev
			}
		}
	}()

	// state accumulates the daemon's view: per-file diag lines rendered the
	// way batch mode prints them.
	state := map[string][]string{}
	nextGen := func() smokeEvent {
		t.Helper()
		deadline := time.After(60 * time.Second)
		var pendingFile string
		for {
			select {
			case ev, ok := <-events:
				if !ok {
					t.Fatal("watch child closed its event stream")
				}
				switch ev.kind() {
				case "file":
					pendingFile = ev.str("file")
					state[pendingFile] = nil
				case "diag":
					state[pendingFile] = append(state[pendingFile],
						fmt.Sprintf("%s:%d:%d: [%s] %s",
							ev.str("file"), ev.num("line"), ev.num("col"),
							ev.str("qualifier"), ev.str("message")))
				case "remove":
					delete(state, ev.str("file"))
				case "generation":
					return ev
				}
			case <-deadline:
				t.Fatal("no generation summary within 60s")
			}
		}
	}

	g0 := nextGen()
	if g0.num("checked") != len(rels) {
		t.Fatalf("startup generation checked %d files, want %d: %v", g0.num("checked"), len(rels), g0)
	}

	// The edit: one function body changes (atomic rename, as editors save).
	edited := strings.Replace(targetSrc, "return acc;", "return acc + acc;", 1)
	full := filepath.Join(dir, filepath.FromSlash(target))
	tmp := full + ".tmp-edit"
	if err := os.WriteFile(tmp, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, full); err != nil {
		t.Fatal(err)
	}

	g1 := nextGen()
	if g1.num("checked") != 1 {
		t.Fatalf("edit generation re-checked %d files, want exactly 1: %v", g1.num("checked"), g1)
	}
	if g1.num("cache_misses") != 1 || g1.num("cache_hits") != targetFuncs-1 {
		t.Fatalf("cache delta %d misses / %d hits, want 1 / %d (only the edited function re-checks): %v",
			g1.num("cache_misses"), g1.num("cache_hits"), targetFuncs-1, g1)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for range events {
	} // drain the exit stats event until EOF
	if err := cmd.Wait(); err != nil {
		t.Fatalf("watch child exit: %v", err)
	}

	// Ground truth: a fresh batch run over the final tree must agree with the
	// daemon's accumulated diagnostics byte for byte.
	batch := exec.Command(os.Args[0], "-r", dir)
	batch.Env = append(os.Environ(), "QUALCHECK_SMOKE_CHILD=1")
	out, err := batch.Output()
	if ee, ok := err.(*exec.ExitError); err != nil && (!ok || ee.ExitCode() != 1) {
		t.Fatalf("batch run: %v\n%s", err, out)
	}
	var want []string
	for _, line := range strings.Split(string(out), "\n") {
		if diagLineRe.MatchString(line) {
			want = append(want, line)
		}
	}
	var got []string
	for _, diags := range state {
		got = append(got, diags...)
	}
	sort.Strings(want)
	sort.Strings(got)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("daemon state diverges from a fresh batch run\ndaemon:\n%s\nbatch:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// Command qualserve runs the qualifier checking service: an HTTP+JSON API
// over the extensible typechecker and the soundness prover, built for
// long-lived concurrent serving with content-addressed incremental
// re-checking.
//
// Usage:
//
//	qualserve [-addr :8080] [-workers N] [-queue N] [-timeout 30s] [-drain 10s]
//
// Endpoints:
//
//	POST /check   — qualifier-check a cminor program (JSON body: source,
//	                optional quals/taint/flow_sensitive/timeout_ms)
//	POST /prove   — discharge a qualifier set's soundness obligations
//	GET  /metrics — request counts, p50/p99 latency, queue depth, shed
//	                count, and cache hit rates
//	GET  /healthz — liveness (503 while draining)
//
// SIGINT/SIGTERM starts a graceful drain: in-flight requests finish (up to
// -drain), new ones are answered 503, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
	workers := flag.Int("workers", 0, "worker pool size (default: all cores)")
	queue := flag.Int("queue", 0, "admission queue capacity (default: 2*workers)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	funcCache := flag.Int("func-cache", 0, "function result cache capacity (default 8192)")
	proverCache := flag.Int("prover-cache", 0, "prover outcome cache capacity (default 4096)")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	srv := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		RequestTimeout:  *timeout,
		DrainTimeout:    *drain,
		FuncCacheSize:   *funcCache,
		ProverCacheSize: *proverCache,
	})
	err := srv.ListenAndServe(ctx, *addr, func(a net.Addr) {
		// The announce line is machine-readable: the smoke test (and any
		// supervisor binding port 0) parses the bound address from it.
		fmt.Printf("qualserve listening on %s\n", a)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qualserve:", err)
		return 1
	}
	fmt.Println("qualserve: drained, bye")
	return 0
}

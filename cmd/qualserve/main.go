// Command qualserve runs the qualifier checking service: an HTTP+JSON API
// over the extensible typechecker and the soundness prover, built for
// long-lived concurrent serving with content-addressed incremental
// re-checking.
//
// Usage:
//
//	qualserve [-addr :8080] [-workers N] [-queue N] [-timeout 30s] [-drain 10s]
//	          [-max-body N] [-mem-limit N] [-breaker-threshold K] [-breaker-cooldown 5s]
//	          [-max-terms N] [-max-clauses N] [-max-insts N]
//	          [-cache-dir dir] [-cache-budget N] [-cache-peers url,url]
//	          [-cache-secret-file path] [-faults spec]
//
// Endpoints:
//
//	POST /check       — qualifier-check a cminor program (JSON body: source,
//	                    optional quals/taint/flow_sensitive/timeout_ms)
//	POST /check-batch — qualifier-check a batch of files in one request
//	                    (JSON body: files [{filename, source}], shared
//	                    quals/taint/flow_sensitive/timeout_ms); diagnostics
//	                    carry their file, and identical functions — within
//	                    the batch or across concurrent batches — coalesce
//	                    to one function-cache fill
//	POST /prove       — discharge a qualifier set's soundness obligations
//	GET  /metrics     — request counts, p50/p99 latency, queue depth, shed
//	                    count, cache hit + coalesce rates, budget trips,
//	                    fault fires, and per-qualifier breaker state
//	GET  /healthz — liveness (503 while draining)
//	GET  /cache/{func|prover}/{hash} — serve a sealed cache record to a peer
//	                    node (with -cache-dir; see -cache-peers)
//
// With -cache-dir, both warm caches persist across restarts as checksummed
// crash-safe records; corrupt or torn records are evicted and re-proved,
// never trusted. With -cache-peers, a local cache miss consults the listed
// nodes before computing. The two namespaces have different trust anchors:
// fetched prover verdicts are admitted only after their proof certificates
// replay locally, so a lying peer (or an on-path attacker on these plain
// HTTP fetches) costs a re-prove, never a wrong Valid. Fetched checker
// results have no proof to replay — their content seal is a plain checksum
// that detects corruption, not tampering — so they are fetched only when
// -cache-secret-file configures a shared fleet secret: every served record
// carries an HMAC under it, every fetched record must verify, and without a
// secret the checker namespace simply never fetches. Give every node in a
// fleet the same secret file, and treat the secret as the thing that makes
// a peer's checker results as trustworthy as your own disk.
//
// SIGINT/SIGTERM starts a graceful drain: in-flight requests finish (up to
// -drain), new ones are answered 503, then the process exits 0.
//
// Failure containment (see DESIGN.md): request bodies over -max-body are
// answered 413; prover searches past the -max-terms/-max-clauses/-max-insts
// budgets yield transient "resource budget exceeded" Unknowns that are
// retried, never cached, and counted against a per-qualifier circuit
// breaker; requests arriving while the live heap exceeds -mem-limit are
// shed 503 with Retry-After. The -faults flag (or the QUAL_FAULTS
// environment variable) arms deterministic fault-injection points for chaos
// drills — see internal/faults for the spec grammar.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

// splitPeers parses the -cache-peers list, tolerating empty segments and
// stray whitespace so "a, b," means ["a", "b"].
func splitPeers(v string) []string {
	var peers []string
	for _, p := range strings.Split(v, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, strings.TrimRight(p, "/"))
		}
	}
	return peers
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
	workers := flag.Int("workers", 0, "worker pool size (default: all cores)")
	queue := flag.Int("queue", 0, "admission queue capacity (default: 2*workers)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	funcCache := flag.Int("func-cache", 0, "function result cache capacity (default 8192)")
	proverCache := flag.Int("prover-cache", 0, "prover outcome cache capacity (default 4096)")
	maxBody := flag.Int64("max-body", 0, "request body size cap in bytes; larger bodies get 413 (default 8 MiB)")
	memLimit := flag.Uint64("mem-limit", 0, "live-heap high-water mark in bytes; requests shed 503 above it (0 = off)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive infrastructure failures before a qualifier's breaker opens (default 3; negative = off)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (default 5s)")
	retry := flag.Int("retry", 0, "transient-Unknown retries per obligation with jittered backoff (default 1; negative = off)")
	retryBackoff := flag.Duration("retry-backoff", 0, "base backoff between transient retries (default 5ms)")
	maxTerms := flag.Int("max-terms", 0, "per-goal interned-term budget; trips become transient Unknowns (0 = unlimited)")
	maxClauses := flag.Int("max-clauses", 0, "per-goal clause-database budget (0 = unlimited)")
	maxInsts := flag.Int("max-insts", 0, "per-goal quantifier-instantiation budget (0 = default)")
	cacheDir := flag.String("cache-dir", "", "persist both warm caches under this directory (crash-safe, checksummed records; restarts start warm)")
	cacheBudget := flag.Int64("cache-budget", 0, "per-namespace disk cache size in bytes before LRU eviction (0 = default 256 MiB)")
	cachePeers := flag.String("cache-peers", "", "comma-separated base URLs of peer qualserve nodes to fetch cache records from on a local miss (every fetched record is re-verified before use)")
	cacheSecretFile := flag.String("cache-secret-file", "", "file holding the shared fleet secret that authenticates peer cache records (required for checker-result peer fetch; prover fetch works without it via certificate replay)")
	peerTimeout := flag.Duration("peer-timeout", 0, "per-attempt timeout for one peer cache fetch (default 2s)")
	peerRetries := flag.Int("peer-retries", 0, "extra fetch attempts per peer after the first (default 1; negative = off)")
	certs := flag.Bool("cert", false, "emit and replay-verify a proof certificate for every Valid prover verdict (surfaced per obligation and in /metrics)")
	prefilter := flag.String("prefilter", "on", "prover's cheap discharge tiers: on|off (escape hatch; verdicts unchanged)")
	learn := flag.String("learn", "on", "CDCL clause learning and lemma sharing: on|off (off selects the chronological engine)")
	faultSpec := flag.String("faults", "", "arm fault-injection points, e.g. 'simplify.prove.round=budget:every=100' (also QUAL_FAULTS)")
	flag.Parse()

	offSwitch := func(name, v string) bool {
		switch v {
		case "on":
			return false
		case "off":
			return true
		}
		fmt.Fprintf(os.Stderr, "qualserve: -%s must be on or off, got %q\n", name, v)
		os.Exit(2)
		return false
	}

	spec := *faultSpec
	if spec == "" {
		spec = os.Getenv("QUAL_FAULTS")
	}
	if err := faults.Arm(spec); err != nil {
		fmt.Fprintln(os.Stderr, "qualserve:", err)
		return 2
	}
	if faults.Armed() {
		fmt.Fprintf(os.Stderr, "qualserve: FAULT INJECTION ARMED (%s) — this process serves degraded answers by design\n", spec)
	}

	var cacheSecret []byte
	if *cacheSecretFile != "" {
		raw, err := os.ReadFile(*cacheSecretFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qualserve: -cache-secret-file:", err)
			return 2
		}
		cacheSecret = []byte(strings.TrimSpace(string(raw)))
		if len(cacheSecret) == 0 {
			fmt.Fprintf(os.Stderr, "qualserve: -cache-secret-file %s is empty\n", *cacheSecretFile)
			return 2
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	srv := server.New(server.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		RequestTimeout:     *timeout,
		DrainTimeout:       *drain,
		FuncCacheSize:      *funcCache,
		ProverCacheSize:    *proverCache,
		MaxBodyBytes:       *maxBody,
		MemoryHighWater:    *memLimit,
		BreakerThreshold:   *breakerThreshold,
		BreakerCooldown:    *breakerCooldown,
		RetryTransient:     *retry,
		RetryBackoff:       *retryBackoff,
		ProverMaxTerms:     *maxTerms,
		ProverMaxClauses:   *maxClauses,
		ProverMaxInstances: *maxInsts,
		DisablePrefilter:   offSwitch("prefilter", *prefilter),
		DisableLearning:    offSwitch("learn", *learn),
		EmitCertificates:   *certs,
		CacheDir:           *cacheDir,
		CacheBudget:        *cacheBudget,
		CachePeers:         splitPeers(*cachePeers),
		CacheSecret:        cacheSecret,
		PeerTimeout:        *peerTimeout,
		PeerRetries:        *peerRetries,
	})
	err := srv.ListenAndServe(ctx, *addr, func(a net.Addr) {
		// The announce line is machine-readable: the smoke test (and any
		// supervisor binding port 0) parses the bound address from it.
		fmt.Printf("qualserve listening on %s\n", a)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qualserve:", err)
		return 1
	}
	fmt.Println("qualserve: drained, bye")
	return 0
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles as the smoke-test child: when re-executed with
// QUALSERVE_SMOKE_CHILD=1 the test binary runs the real main loop, so the
// smoke test exercises the actual flag parsing, signal handling, and
// graceful drain of the shipped binary without needing a separate build.
func TestMain(m *testing.M) {
	if os.Getenv("QUALSERVE_SMOKE_CHILD") == "1" {
		os.Exit(run())
	}
	os.Exit(m.Run())
}

// TestQualserveSmoke starts qualserve on an ephemeral port, performs one
// /check round-trip, sends SIGTERM, and requires a clean drained exit.
func TestQualserveSmoke(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-addr", "127.0.0.1:0", "-drain", "5s")
	cmd.Env = append(os.Environ(), "QUALSERVE_SMOKE_CHILD=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	var tail []string
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "qualserve listening on "); ok {
				addrCh <- rest
				continue
			}
			tail = append(tail, line)
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for the listening announcement")
	}

	body, _ := json.Marshal(map[string]any{
		"filename": "smoke.c",
		"source":   "int main() { int x = 1; return x; }",
	})
	resp, err := http.Post(fmt.Sprintf("http://%s/check", addr), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /check: %v", err)
	}
	var checkResp struct {
		Warnings int `json:"warnings"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&checkResp); err != nil {
		t.Fatalf("decoding /check response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /check: status %d", resp.StatusCode)
	}
	if checkResp.Warnings != 0 {
		t.Fatalf("smoke program reported %d warnings, want 0", checkResp.Warnings)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("qualserve exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("qualserve did not exit within 15s of SIGTERM")
	}
}

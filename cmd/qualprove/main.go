// Command qualprove is the automated soundness checker's CLI (section 4):
// it generates the proof obligations for each qualifier definition and
// discharges them with the built-in simplify prover.
//
// Usage:
//
//	qualprove [-v] [file.qdl ...]           prove definitions from files
//	qualprove [-v]                          prove the standard library
//	qualprove -goal '(IMPLIES (> x 0) ...)' prove one raw formula
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/logic"
	"repro/internal/profiling"
	"repro/internal/qdl"
	"repro/internal/quals"
	"repro/internal/simplify"
	"repro/internal/soundness"
)

// stopProfiles flushes any active pprof profiles; set once in main, and
// called on every exit path (deferred calls do not survive os.Exit).
var stopProfiles = func() {}

// exit flushes profiles and terminates with the given status.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

func main() {
	verbose := flag.Bool("v", false, "print each obligation formula")
	goal := flag.String("goal", "", "prove a single Simplify-style formula against the semantics axioms")
	rounds := flag.Int("rounds", 0, "override the prover's instantiation round budget")
	maxTerms := flag.Int("max-terms", 0, "per-goal interned-term budget; a trip yields a transient Unknown (0 = unlimited)")
	maxClauses := flag.Int("max-clauses", 0, "per-goal clause-database budget (0 = unlimited)")
	maxInsts := flag.Int("max-insts", 0, "per-goal quantifier-instantiation budget (0 = default)")
	memBudget := flag.Uint64("mem-budget", 0, "process live-heap watermark in bytes; searches trip when exceeded (0 = unlimited)")
	jobs := flag.Int("j", 0, "number of concurrent proof workers (default: all cores)")
	cacheStats := flag.Bool("cache-stats", false, "print memoizing prover-cache statistics after the run")
	timeout := flag.Duration("timeout", simplify.DefaultGoalTimeout, "per-goal wall-clock budget; 0 means unlimited")
	stats := flag.Bool("stats", false, "print per-qualifier search statistics (decisions, instantiations, ...)")
	certs := flag.Bool("cert", false, "emit a proof certificate per Valid verdict and verify it with the independent replay checker before trusting the result")
	prefilter := flag.String("prefilter", "on", "cheap discharge tiers before the full engine: on|off (off is an escape hatch; verdicts are unchanged)")
	learn := flag.String("learn", "on", "CDCL clause learning and cross-goal lemma sharing: on|off (off selects the chronological engine)")
	trace := flag.String("trace", "", "write a per-obligation JSONL search trace to this file")
	traceDeterministic := flag.Bool("trace-deterministic", false, "omit wall-clock fields from -trace records so identical runs produce byte-identical files")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop
	defer stopProfiles()

	// Ctrl-C / SIGTERM cancels in-flight proof searches; stopped goals report
	// Unknown rather than wedging the run.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	opts := soundness.DefaultOptions()
	if *rounds > 0 {
		opts.Prover.MaxRounds = *rounds
	}
	opts.Prover.MaxTerms = *maxTerms
	opts.Prover.MaxClauses = *maxClauses
	if *maxInsts > 0 {
		opts.Prover.MaxInstances = *maxInsts
	}
	opts.Prover.MaxMemoryBytes = *memBudget
	opts.Prover.GoalTimeout = *timeout
	opts.Prover.DisablePrefilter = offSwitch("prefilter", *prefilter)
	opts.Prover.DisableLearning = offSwitch("learn", *learn)
	opts.Prover.EmitCertificates = *certs
	opts.Concurrency = *jobs
	opts.TraceOmitTimings = *traceDeterministic
	cache := simplify.NewCache(0)
	opts.Cache = cache
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		opts.Trace = f
	}
	printCacheStats := func() {
		if !*cacheStats {
			return
		}
		s := cache.Stats()
		fmt.Printf("prover cache: %d hits, %d misses, %d evictions (%.1f%% hit rate, %d entries)\n",
			s.Hits, s.Misses, s.Evictions, 100*s.HitRate(), cache.Len())
		ls := cache.LemmaStats()
		fmt.Printf("lemma pools: %d pools, %d pooled lemmas (%d admitted, %d forgotten)\n",
			ls.Pools, ls.Lemmas, ls.Added, ls.Dropped)
		pf := simplify.GlobalPrefilterCounters()
		fmt.Printf("prefilter: %d/%d goals discharged (%.1f%%; ground=%d unit=%d interval=%d)\n",
			pf.Discharged(), pf.Attempts, 100*pf.HitRate(), pf.Ground, pf.Unit, pf.Interval)
	}
	printCertStats := func() {
		if !*certs {
			return
		}
		cc := simplify.GlobalCertCounters()
		fmt.Printf("certificates: %d emitted, %d replayed, %d rejected\n",
			cc.Emitted, cc.Replayed, cc.Rejected)
	}

	if *goal != "" {
		f, err := logic.ParseFormula(*goal)
		if err != nil {
			fatal(err)
		}
		prover := simplify.New(soundness.Axioms(), opts.Prover).WithCache(cache)
		start := time.Now()
		out := prover.ProveContext(ctx, f)
		fmt.Printf("%s in %v\n", out, time.Since(start).Round(time.Microsecond))
		if out.Reason != "" {
			fmt.Printf("reason: %s\n", out.Reason)
		}
		if *stats {
			fmt.Printf("stats: %s\n", statsLine(out.Stats))
		}
		if *certs && out.Certificate != nil {
			fmt.Printf("certificate: %d steps, replay verified\n", len(out.Certificate.Steps))
		}
		printCacheStats()
		printCertStats()
		if out.Result != simplify.Valid {
			exit(1)
		}
		return
	}

	var reg *qdl.Registry
	if flag.NArg() == 0 {
		reg, err = quals.Standard()
	} else {
		sources := map[string]string{}
		for _, f := range flag.Args() {
			data, rerr := os.ReadFile(f)
			if rerr != nil {
				fatal(rerr)
			}
			sources[f] = string(data)
		}
		reg, err = qdl.Load(sources)
	}
	if err != nil {
		fatal(err)
	}

	// ProveAll proves qualifiers and their obligations concurrently over the
	// shared cache; reports still come back in registration order, and a
	// qualifier whose obligations cannot be generated gets an ERROR report
	// instead of hiding the rest.
	reports, _ := soundness.ProveAllContext(ctx, reg, opts)
	allSound := true
	for _, report := range reports {
		fmt.Print(report)
		if *stats && report.Err == nil {
			fmt.Printf("  stats: %s\n", statsLine(report.Stats))
		}
		if *verbose && report.Err == nil {
			obls, _ := soundness.Obligations(reg.Lookup(report.Qualifier), reg)
			for _, o := range obls {
				if !o.Vacuous {
					fmt.Printf("    %s\n", o.Formula)
				}
			}
		}
		if !report.Sound() {
			allSound = false
		}
	}
	printCacheStats()
	printCertStats()
	if *stats {
		if trips := simplify.BudgetTrips(); trips > 0 {
			fmt.Printf("budget trips: %d (transient Unknowns; rerun with larger -max-terms/-max-clauses/-max-insts/-mem-budget)\n", trips)
		}
	}
	if !allSound {
		exit(1)
	}
}

// statsLine renders search telemetry as one compact line.
func statsLine(s simplify.Stats) string {
	return fmt.Sprintf("rounds=%d decisions=%d case-splits=%d instantiations=%d ground=%d merges=%d fm-elims=%d theory-checks=%d prefilter=%d/%d learned=%d forgotten=%d restarts=%d lemmas-in=%d lemmas-out=%d search=%v",
		s.Rounds, s.Decisions, s.CaseSplits, s.Instantiations, s.GroundClauses,
		s.CongruenceMerges, s.FMEliminations, s.TheoryChecks,
		s.PrefilterGround+s.PrefilterUnit+s.PrefilterInterval, s.PrefilterAttempts,
		s.LearnedClauses, s.ForgottenClauses, s.Restarts, s.LemmasImported, s.LemmasExported,
		s.WallTime.Round(time.Microsecond))
}

// offSwitch parses an on/off flag value.
func offSwitch(name, v string) bool {
	switch v {
	case "on":
		return false
	case "off":
		return true
	}
	fatal(fmt.Errorf("-%s must be on or off, got %q", name, v))
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qualprove:", err)
	exit(2)
}

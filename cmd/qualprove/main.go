// Command qualprove is the automated soundness checker's CLI (section 4):
// it generates the proof obligations for each qualifier definition and
// discharges them with the built-in simplify prover.
//
// Usage:
//
//	qualprove [-v] [file.qdl ...]           prove definitions from files
//	qualprove [-v]                          prove the standard library
//	qualprove -goal '(IMPLIES (> x 0) ...)' prove one raw formula
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/logic"
	"repro/internal/qdl"
	"repro/internal/quals"
	"repro/internal/simplify"
	"repro/internal/soundness"
)

func main() {
	verbose := flag.Bool("v", false, "print each obligation formula")
	goal := flag.String("goal", "", "prove a single Simplify-style formula against the semantics axioms")
	rounds := flag.Int("rounds", 0, "override the prover's instantiation round budget")
	jobs := flag.Int("j", 0, "number of concurrent proof workers (default: all cores)")
	cacheStats := flag.Bool("cache-stats", false, "print memoizing prover-cache statistics after the run")
	flag.Parse()

	opts := soundness.DefaultOptions()
	if *rounds > 0 {
		opts.Prover.MaxRounds = *rounds
	}
	opts.Concurrency = *jobs
	cache := simplify.NewCache(0)
	opts.Cache = cache
	printCacheStats := func() {
		if !*cacheStats {
			return
		}
		s := cache.Stats()
		fmt.Printf("prover cache: %d hits, %d misses, %d evictions (%.1f%% hit rate, %d entries)\n",
			s.Hits, s.Misses, s.Evictions, 100*s.HitRate(), cache.Len())
	}

	if *goal != "" {
		f, err := logic.ParseFormula(*goal)
		if err != nil {
			fatal(err)
		}
		prover := simplify.New(soundness.Axioms(), opts.Prover).WithCache(cache)
		start := time.Now()
		out := prover.Prove(f)
		fmt.Printf("%s in %v\n", out, time.Since(start).Round(time.Microsecond))
		printCacheStats()
		if out.Result != simplify.Valid {
			os.Exit(1)
		}
		return
	}

	var reg *qdl.Registry
	var err error
	if flag.NArg() == 0 {
		reg, err = quals.Standard()
	} else {
		sources := map[string]string{}
		for _, f := range flag.Args() {
			data, rerr := os.ReadFile(f)
			if rerr != nil {
				fatal(rerr)
			}
			sources[f] = string(data)
		}
		reg, err = qdl.Load(sources)
	}
	if err != nil {
		fatal(err)
	}

	// ProveAll proves qualifiers and their obligations concurrently over the
	// shared cache; reports still come back in registration order, and a
	// qualifier whose obligations cannot be generated gets an ERROR report
	// instead of hiding the rest.
	reports, _ := soundness.ProveAll(reg, opts)
	allSound := true
	for _, report := range reports {
		fmt.Print(report)
		if *verbose && report.Err == nil {
			obls, _ := soundness.Obligations(reg.Lookup(report.Qualifier), reg)
			for _, o := range obls {
				if !o.Vacuous {
					fmt.Printf("    %s\n", o.Formula)
				}
			}
		}
		if !report.Sound() {
			allSound = false
		}
	}
	printCacheStats()
	if !allSound {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qualprove:", err)
	os.Exit(2)
}

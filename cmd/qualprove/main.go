// Command qualprove is the automated soundness checker's CLI (section 4):
// it generates the proof obligations for each qualifier definition and
// discharges them with the built-in simplify prover.
//
// Usage:
//
//	qualprove [-v] [file.qdl ...]           prove definitions from files
//	qualprove [-v]                          prove the standard library
//	qualprove -goal '(IMPLIES (> x 0) ...)' prove one raw formula
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/logic"
	"repro/internal/qdl"
	"repro/internal/quals"
	"repro/internal/simplify"
	"repro/internal/soundness"
)

func main() {
	verbose := flag.Bool("v", false, "print each obligation formula")
	goal := flag.String("goal", "", "prove a single Simplify-style formula against the semantics axioms")
	rounds := flag.Int("rounds", 0, "override the prover's instantiation round budget")
	flag.Parse()

	opts := soundness.DefaultOptions()
	if *rounds > 0 {
		opts.Prover.MaxRounds = *rounds
	}

	if *goal != "" {
		f, err := logic.ParseFormula(*goal)
		if err != nil {
			fatal(err)
		}
		prover := simplify.New(soundness.Axioms(), opts.Prover)
		start := time.Now()
		out := prover.Prove(f)
		fmt.Printf("%s in %v\n", out, time.Since(start).Round(time.Microsecond))
		if out.Result != simplify.Valid {
			os.Exit(1)
		}
		return
	}

	var reg *qdl.Registry
	var err error
	if flag.NArg() == 0 {
		reg, err = quals.Standard()
	} else {
		sources := map[string]string{}
		for _, f := range flag.Args() {
			data, rerr := os.ReadFile(f)
			if rerr != nil {
				fatal(rerr)
			}
			sources[f] = string(data)
		}
		reg, err = qdl.Load(sources)
	}
	if err != nil {
		fatal(err)
	}

	allSound := true
	for _, d := range reg.Defs() {
		report, err := soundness.Prove(d, reg, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
		if *verbose {
			obls, _ := soundness.Obligations(d, reg)
			for _, o := range obls {
				if !o.Vacuous {
					fmt.Printf("    %s\n", o.Formula)
				}
			}
		}
		if !report.Sound() {
			allSound = false
		}
	}
	if !allSound {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qualprove:", err)
	os.Exit(2)
}

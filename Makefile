GO ?= go

.PHONY: all build vet test race bench experiments ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the parallel-vs-serial
# equivalence tests in internal/soundness and internal/checker exercise the
# concurrent prover, cache, and checker paths.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .

experiments:
	$(GO) run ./cmd/experiments

# ci is the gate: everything must build, vet clean, and pass under -race.
ci: build vet race

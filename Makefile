GO ?= go

.PHONY: all build vet test race bench bench-smoke bench-tree tree-smoke experiments fuzz-smoke serve-smoke chaos-smoke cert-smoke watch-smoke persist-smoke ci

# Seconds of fuzzing per target in fuzz-smoke.
FUZZTIME ?= 30s

# Fixed iteration and repetition counts for `make bench`: pinning -benchtime
# keeps run-to-run numbers comparable (ns/op ratios against the baseline are
# iteration-count independent, but the variance isn't).
BENCHTIME ?= 100x
BENCHCOUNT ?= 3
# Raw `go test -bench` output of the benchmark suite at the commit before the
# interned search engine landed; `make bench` joins against it for speedups.
BENCH_BASELINE ?= BENCH_head_baseline.txt

# The benchmark subset recorded in BENCH_prover.json: the two acceptance
# families (soundness obligations, Table 2 checking) plus the prover and
# engine microbenchmarks.
BENCH_ROOT = ^(BenchmarkTable2Untainted|BenchmarkSoundness|BenchmarkAblationCongruenceChain|BenchmarkProverPosMultiplication|BenchmarkProverSelectStore)$$
BENCH_SIMPLIFY = ^(BenchmarkRefute|BenchmarkTheoryConflict|BenchmarkPrefilterOnly|BenchmarkConflictLearning)$$
# Geomean-regression tolerance for the bench-smoke CI gate.
BENCH_MAX_REGRESS ?= 0.10

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the parallel-vs-serial
# equivalence tests in internal/soundness and internal/checker exercise the
# concurrent prover, cache, and checker paths.
race:
	$(GO) test -race ./...

# bench reruns the recorded prover benchmark suite with fixed -benchtime and
# -count and rewrites BENCH_prover.json, the committed performance record,
# including per-family geomean speedups against $(BENCH_BASELINE). The prior
# document's summary is folded into the new one's "history" array, so the
# committed record keeps the PR-over-PR trajectory.
bench:
	{ $(GO) test -run '^$$' -bench '$(BENCH_ROOT)' -benchtime $(BENCHTIME) -count $(BENCHCOUNT) . ; \
	  $(GO) test -run '^$$' -bench '$(BENCH_SIMPLIFY)' -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) ./internal/simplify ; } \
	| $(GO) run ./cmd/benchjson -baseline $(BENCH_BASELINE) -prev BENCH_prover.json \
	    -note "benchtime=$(BENCHTIME) count=$(BENCHCOUNT); baseline: pre-interning HEAD ($(BENCH_BASELINE))" \
	    -o BENCH_prover.json
	@echo wrote BENCH_prover.json

# bench-smoke compiles and runs every benchmark for one iteration (the CI
# guard that keeps the suite building and panic-free), then reruns the
# recorded subset at a reduced fixed -benchtime and fails if its geomean
# speedup has fallen more than $(BENCH_MAX_REGRESS) below the committed
# BENCH_prover.json. Averaging -count 3 samples matters more than long
# -benchtime here: the µs-scale suite members swing 30% on single samples
# (warmup), which a one-shot 50x gate was observed to trip on.
GATE_BENCHTIME ?= 25x
GATE_BENCHCOUNT ?= 3
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x . ./internal/simplify
	{ $(GO) test -run '^$$' -bench '$(BENCH_ROOT)' -benchtime $(GATE_BENCHTIME) -count $(GATE_BENCHCOUNT) . ; \
	  $(GO) test -run '^$$' -bench '$(BENCH_SIMPLIFY)' -benchtime $(GATE_BENCHTIME) -count $(GATE_BENCHCOUNT) ./internal/simplify ; } \
	| $(GO) run ./cmd/benchjson -baseline $(BENCH_BASELINE) \
	    -prev BENCH_prover.json -max-regress $(BENCH_MAX_REGRESS) >/dev/null

# The repo-scale tree-checking benchmark recorded in BENCH_tree.json, with
# its own raw baseline (the first CheckTree implementation's run).
TREE_BENCH = ^BenchmarkCheckTree$$
TREE_BASELINE ?= BENCH_tree_baseline.txt

# bench-tree reruns the tree-checking benchmark and rewrites BENCH_tree.json,
# the committed repo-scale throughput record, folding the prior summary into
# its history like `make bench` does for BENCH_prover.json.
bench-tree:
	$(GO) test -run '^$$' -bench '$(TREE_BENCH)' -benchtime 10x -count $(BENCHCOUNT) ./internal/checker \
	| $(GO) run ./cmd/benchjson -baseline $(TREE_BASELINE) -prev BENCH_tree.json \
	    -note "benchtime=10x count=$(BENCHCOUNT); baseline: first CheckTree implementation ($(TREE_BASELINE))" \
	    -o BENCH_tree.json
	@echo wrote BENCH_tree.json

# tree-smoke is the repo-scale CI gate: scripts/tree_smoke.sh generates a
# ~500-file corpus and asserts `qualcheck -r` produces byte-identical
# diagnostics at -j 1 and -j NumCPU (plus a min(4, NumCPU/2)x wall-clock
# speedup floor where the core count makes one meaningful), then the
# tree-checking benchmark geomean is gated against BENCH_tree.json the same
# way bench-smoke gates the prover suite.
tree-smoke:
	sh scripts/tree_smoke.sh
	$(GO) test -run '^$$' -bench '$(TREE_BENCH)' -benchtime 5x -count $(GATE_BENCHCOUNT) ./internal/checker \
	| $(GO) run ./cmd/benchjson -baseline $(TREE_BASELINE) \
	    -prev BENCH_tree.json -max-regress $(BENCH_MAX_REGRESS) >/dev/null

experiments:
	$(GO) run ./cmd/experiments

# fuzz-smoke gives each native fuzz target a short budget: the two front-end
# parsers must never panic on arbitrary bytes, the prover must never disagree
# with the ground-formula oracle, the certificate replay checker must reject
# (never accept or panic on) arbitrary mutations of valid certificates, and
# the /check handler must answer any body with a contract status and a JSON
# payload.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/cminor
	$(GO) test -run '^$$' -fuzz '^FuzzParseQDL$$' -fuzztime $(FUZZTIME) ./internal/qdl
	$(GO) test -run '^$$' -fuzz '^FuzzProveGround$$' -fuzztime $(FUZZTIME) ./internal/simplify
	$(GO) test -run '^$$' -fuzz '^FuzzCertificateReplay$$' -fuzztime $(FUZZTIME) ./internal/cert
	$(GO) test -run '^$$' -fuzz '^FuzzCheckHandler$$' -fuzztime $(FUZZTIME) ./internal/server

# chaos-smoke runs the fault-injection soak under the race detector: a
# deterministic subset of the fault catalog armed, 64 concurrent clients,
# every request answered from {200, 413, 503, 504} with a JSON body, no
# goroutine leaks, no fault-minted cache entries, and full recovery (breaker
# closed, sound verdicts) once the faults are disarmed.
chaos-smoke:
	$(GO) test -race -run '^TestChaosSoak$$' -count=1 ./internal/server

# cert-smoke proves the entire shipped qualifier suite with certificate
# emission on: every Valid obligation must carry a proof certificate that the
# independent replay checker accepts, with zero rejections.
cert-smoke:
	$(GO) test -run '^TestCertificateSmoke$$' -count=1 ./internal/soundness

# serve-smoke builds the qualserve binary and runs the end-to-end smoke
# test: the real binary on an ephemeral port, one /check round-trip, then a
# clean SIGTERM drain.
serve-smoke:
	$(GO) build ./cmd/qualserve
	$(GO) test -run '^TestQualserveSmoke$$' ./cmd/qualserve

# watch-smoke runs the incremental-daemon end-to-end gate: the real qualcheck
# main in -watch polling mode over a generated corpus tree, one function
# edited, asserting the next generation re-checks exactly one file with a
# FuncCache miss delta of exactly one, and that the daemon's accumulated
# diagnostics byte-match a fresh batch `qualcheck -r` of the final tree.
watch-smoke:
	$(GO) test -run '^TestWatchSmoke$$' -count=1 ./cmd/qualcheck

# persist-smoke is the durable-cache gate: scripts/persist_smoke.sh runs the
# real qualcheck binary twice against one -cache-dir (run 2 must be served
# entirely from disk with byte-identical diagnostics), then corrupts a
# committed record and asserts the next cold start detects it, evicts it,
# and re-proves — converging to the same diagnostics as a fresh run.
persist-smoke:
	sh scripts/persist_smoke.sh

# ci is the gate: everything must build, vet clean, pass under -race, run
# every benchmark for one smoke iteration, keep serial and parallel tree
# checking byte-identical (and fast enough), survive a short fuzzing budget
# on each fuzz target, replay every qualifier-suite certificate, serve one
# checking request end to end, hold the serving contract under injected
# faults, keep the watch daemon's incremental generations faithful to batch
# checking, and keep the disk-backed caches crash-safe and self-healing.
ci: build vet race bench-smoke tree-smoke fuzz-smoke cert-smoke serve-smoke chaos-smoke watch-smoke persist-smoke

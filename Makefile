GO ?= go

.PHONY: all build vet test race bench experiments fuzz-smoke ci

# Seconds of fuzzing per target in fuzz-smoke.
FUZZTIME ?= 30s

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the parallel-vs-serial
# equivalence tests in internal/soundness and internal/checker exercise the
# concurrent prover, cache, and checker paths.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .

experiments:
	$(GO) run ./cmd/experiments

# fuzz-smoke gives each native fuzz target a short budget: the two front-end
# parsers must never panic on arbitrary bytes, and the prover must never
# disagree with the ground-formula oracle.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/cminor
	$(GO) test -run '^$$' -fuzz '^FuzzParseQDL$$' -fuzztime $(FUZZTIME) ./internal/qdl
	$(GO) test -run '^$$' -fuzz '^FuzzProveGround$$' -fuzztime $(FUZZTIME) ./internal/simplify

# ci is the gate: everything must build, vet clean, pass under -race, and
# survive a short fuzzing budget on each fuzz target.
ci: build vet race fuzz-smoke

// Regexengine: the Table 1 / section 6.2 workload as a living program. The
// grep-style DFA engine is fully annotated with nonnull (every one of its
// dereferences is statically validated) and its dfa global carries unique;
// this example checks it, reports the experiment's counters, and then runs
// the engine on a workload of patterns.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/checker"
	"repro/internal/cminor"
	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/quals"
)

func main() {
	reg, err := quals.Standard()
	if err != nil {
		log.Fatal(err)
	}
	p := corpus.GrepDFA()
	prog, err := cminor.Parse(p.Name+".c", p.Source, reg.Names())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== qualifier checking ==")
	res := checker.Check(prog, reg)
	for _, d := range res.Diags {
		fmt.Println(d)
	}
	fmt.Printf("lines:              %d\n", p.Lines())
	fmt.Printf("dereferences:       %d (all validated by nonnull's restrict rule)\n", res.Stats.Dereferences)
	fmt.Printf("nonnull annotations:%d\n", res.Stats.Annotations["nonnull"])
	fmt.Printf("nonnull casts:      %d (flow-insensitivity, section 6.1)\n", res.Stats.QualCasts["nonnull"])
	fmt.Printf("unique references:  %d validated on the dfa global\n", res.Stats.RefUses["dfa"])
	fmt.Printf("warnings:           %d\n", len(res.Diags))

	fmt.Println("\n== running the engine ==")
	out, err := interp.Run(prog, reg, interp.Options{RuntimeChecks: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out.Output)
	if out.Exit == 0 {
		fmt.Println("all pattern self-checks passed")
	}

	// Drive the engine on a custom workload by swapping main().
	fmt.Println("\n== custom workload ==")
	custom := p.Source[:strings.Index(p.Source, "int main() {")] + `
int main() {
  dfa_compile("(ab|ba)*c");
  int r;
  r = dfaexec("ababbac");
  printf("full match (ab|ba)*c on ababbac -> %d\n", r);
  dfa_compile("er.o*r");
  r = dfa_search("several errooors happened");
  printf("search er.o*r in log line -> %d\n", r);
  return 0;
}
`
	cprog, err := cminor.Parse("custom.c", custom, reg.Names())
	if err != nil {
		log.Fatal(err)
	}
	cout, err := interp.Run(cprog, reg, interp.Options{RuntimeChecks: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cout.Output)
}

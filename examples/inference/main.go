// Inference: the paper's section 8 extension — qualifier inference to
// decrease the annotation burden — implemented as a greatest fixpoint over
// the same derivation engine the typechecker uses.
//
// A physics-style program uses an annotated library API (int pos
// parameters) but carries no annotations of its own, so it fails to check.
// Inference recovers the missing annotations automatically, after which the
// program checks cleanly — and one deliberately tainted variable is
// correctly left unannotated.
package main

import (
	"fmt"
	"log"

	"repro/internal/checker"
	"repro/internal/cminor"
	"repro/internal/quals"
)

const src = `
int pos scaled_area(int pos width, int pos height, int pos scale);

int pos shrink(int pos big);

void simulate(int steps) {
  int w = 12;
  int h = 8;
  int s = 2;
  int area;
  area = scaled_area(w, h, s);
  int smaller;
  smaller = shrink(area);
  /* delta may be negative: inference must NOT call it pos */
  int delta = smaller - area;
  int cells = w * h;
}
`

func main() {
	reg, err := quals.Standard()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== without annotations ==")
	prog, err := cminor.Parse("sim.c", src, reg.Names())
	if err != nil {
		log.Fatal(err)
	}
	before := checker.Check(prog, reg)
	for _, d := range before.Diags {
		fmt.Println(d)
	}
	fmt.Printf("sim.c: %d warning(s) before inference\n", len(before.Diags))

	fmt.Println("\n== inference (section 8 extension) ==")
	prog2, err := cminor.Parse("sim.c", src, reg.Names())
	if err != nil {
		log.Fatal(err)
	}
	inferred, err := checker.Infer(prog2, reg, []string{"pos", "neg", "nonzero"})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range inferred {
		fmt.Println(a)
	}

	fmt.Println("\n== after inference ==")
	after := checker.Check(prog2, reg)
	for _, d := range after.Diags {
		fmt.Println(d)
	}
	fmt.Printf("sim.c: %d warning(s) after inference\n", len(after.Diags))
	for _, a := range inferred {
		if a.Var == "delta" && a.Qual == "pos" {
			fmt.Println("BUG: delta wrongly inferred pos")
		}
	}
}

// Taintcheck: the section 6.3 format-string experiment end to end on the
// bftpd subject.
//
//  1. Load the taintedness qualifiers (untainted with the
//     constants-are-trusted clause, plus tainted).
//  2. Typecheck bftpd: exactly one warning — the directory entry name used
//     as sendstrf's format string, the real bftpd 1.0.x vulnerability.
//  3. Demonstrate the bug is real: with a hostile file name planted, the
//     server crashes reading absent varargs.
//  4. Apply the historical fix and show both the checker and the runtime
//     are satisfied.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/checker"
	"repro/internal/cminor"
	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/quals"
)

func main() {
	reg, err := quals.TaintWithConstants()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== static detection ==")
	p := corpus.Bftpd()
	prog, err := cminor.Parse(p.Name+".c", p.Source, reg.Names())
	if err != nil {
		log.Fatal(err)
	}
	res := checker.Check(prog, reg)
	for _, d := range res.Diags {
		fmt.Println(d)
	}
	fmt.Printf("bftpd: %d warning(s)\n", len(res.Diags))

	fmt.Println("\n== the bug is exploitable ==")
	exploit := corpus.BftpdExploit()
	eprog, err := cminor.Parse(exploit.Name+".c", exploit.Source, reg.Names())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := interp.Run(eprog, reg, interp.Options{}); err != nil {
		fmt.Println("server crashed:", err)
	} else {
		fmt.Println("unexpected: the exploit did not crash")
	}

	fmt.Println("\n== after the fix ==")
	fixed := corpus.BftpdFixed()
	// Plant the same hostile file name against the fixed server.
	fixed.Source = strings.Replace(fixed.Source, "int exploit_mode = 0;", "int exploit_mode = 1;", 1)
	fprog, err := cminor.Parse(fixed.Name+".c", fixed.Source, reg.Names())
	if err != nil {
		log.Fatal(err)
	}
	fres := checker.Check(fprog, reg)
	fmt.Printf("bftpd-fixed: %d warning(s)\n", len(fres.Diags))
	out, err := interp.Run(fprog, reg, interp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(out.Output, "\n") {
		if strings.Contains(line, "exploit") {
			fmt.Println("served safely:", line)
		}
	}
}

// Quickstart: the full semantic-type-qualifier pipeline on the paper's
// running example (figures 1 and 2).
//
//  1. Define the pos and neg qualifiers in the qualifier definition
//     language, with their type rules and run-time invariants.
//  2. Let the soundness checker prove the type rules correct, once, for all
//     programs.
//  3. Typecheck the lcm program against the rules.
//  4. Run it: the cast the programmer inserted carries an instrumented
//     run-time check of pos's invariant.
//  5. Mutate the multiplication rule into subtraction and watch the
//     soundness checker reject it.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/checker"
	"repro/internal/cminor"
	"repro/internal/interp"
	"repro/internal/qdl"
	"repro/internal/quals"
	"repro/internal/soundness"
)

const lcmProgram = `
int printf(char* format, ...);

int pos gcd(int pos a, int pos b) {
  int n = a;
  int m = b;
  while (m != 0) {
    int t = m;
    /* the loop guard ensures m != 0, but the type system is
       flow-insensitive: cast, with a run-time check (section 2.1.3) */
    m = n % (int nonzero) m;
    n = t;
  }
  return (int pos) n;
}

int pos lcm(int pos a, int pos b) {
  int pos d;
  d = gcd(a, b);
  int pos prod = a * b;
  return (int pos) (prod / d);
}

int main() {
  int r;
  r = lcm(4, 6);
  printf("lcm(4, 6) = %d\n", r);
  r = lcm(21, 6);
  printf("lcm(21, 6) = %d\n", r);
  return 0;
}
`

func main() {
	// Step 1: load qualifier definitions (figure 1 plus neg and nonzero,
	// which pos's rules and the division restrict reference).
	reg, err := qdl.Load(map[string]string{
		"pos.qdl":     quals.Pos,
		"neg.qdl":     quals.Neg,
		"nonzero.qdl": quals.Nonzero,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== qualifier definitions ==")
	fmt.Print(reg.Lookup("pos"))

	// Step 2: prove the type rules sound, independent of any program.
	fmt.Println("\n== automated soundness checking ==")
	for _, name := range []string{"pos", "neg", "nonzero"} {
		report, err := soundness.Prove(reg.Lookup(name), reg, soundness.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report)
	}

	// Step 3: typecheck figure 2's lcm against the rules.
	fmt.Println("\n== extensible typechecking ==")
	prog, err := cminor.Parse("lcm.c", lcmProgram, reg.Names())
	if err != nil {
		log.Fatal(err)
	}
	res := checker.Check(prog, reg)
	for _, d := range res.Diags {
		fmt.Println(d)
	}
	fmt.Printf("lcm.c: %d warning(s), %d cast(s) instrumented with run-time checks\n",
		len(res.Diags), len(res.Casts))

	// Step 4: run with instrumented checks.
	fmt.Println("\n== instrumented execution ==")
	out, err := interp.Run(prog, reg, interp.Options{RuntimeChecks: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out.Output)

	// Step 5: the paper's broken rule — E1 - E2 instead of E1 * E2 — is
	// caught before any program ever runs.
	fmt.Println("\n== a broken rule is rejected ==")
	brokenReg, err := qdl.Load(map[string]string{
		"pos.qdl": strings.Replace(quals.Pos, "E1 * E2", "E1 - E2", 1),
		"neg.qdl": quals.Neg,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := soundness.Prove(brokenReg.Lookup("pos"), brokenReg, soundness.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
	if !report.Sound() {
		fmt.Println("the soundness checker caught the subtraction rule, as in section 2.1.3")
	}
}

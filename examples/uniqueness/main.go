// Uniqueness: the reference qualifier unique (figures 5, 6, and 13) in
// action.
//
//  1. Prove unique's assign and preservation obligations sound.
//  2. Typecheck figure 6's make_array: malloc and NULL establish
//     uniqueness; element writes are unrestricted.
//  3. Show the violations the type rules reject: aliasing through a local,
//     passing the unique global as an argument, taking its address.
package main

import (
	"fmt"
	"log"

	"repro/internal/checker"
	"repro/internal/cminor"
	"repro/internal/qdl"
	"repro/internal/quals"
	"repro/internal/soundness"
)

const good = `
int* unique array;
void make_array(int n) {
  array = (int*)malloc(sizeof(int) * n);
  for (int i = 0; i < n; i++) array[i] = i;
}
void clear_array() {
  array = NULL;
}
`

var violations = []struct {
	title  string
	source string
}{
	{"aliasing through a local (section 2.2.1)", `
void f() {
  int* unique p;
  p = (int*)malloc(sizeof(int));
  int* q = p;
}
`},
	{"passing the unique global to a procedure (section 6.2)", `
int* unique dfa;
void helper(int* d);
void f() {
  helper(dfa);
}
`},
	{"taking the address of a unique l-value", `
void f() {
  int* unique p;
  p = NULL;
  int** pp = &p;
}
`},
	{"initializing from a call result (section 6.2)", `
int* make();
int* unique dfa;
void init() {
  dfa = make();
}
`},
}

func main() {
	reg, err := qdl.Load(map[string]string{
		"unique.qdl":    quals.Unique,
		"unaliased.qdl": quals.Unaliased,
	})
	if err != nil {
		log.Fatal(err)
	}
	freshReg, err := qdl.Load(map[string]string{"unique.qdl": quals.UniqueFresh})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== soundness of the reference qualifiers ==")
	for _, name := range []string{"unique", "unaliased"} {
		report, err := soundness.Prove(reg.Lookup(name), reg, soundness.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report)
	}

	fmt.Println("\n== figure 6: make_array typechecks ==")
	prog, err := cminor.Parse("make_array.c", good, reg.Names())
	if err != nil {
		log.Fatal(err)
	}
	res := checker.Check(prog, reg)
	for _, d := range res.Diags {
		fmt.Println(d)
	}
	fmt.Printf("make_array.c: %d warning(s)\n", len(res.Diags))

	fmt.Println("\n== violations rejected ==")
	for _, v := range violations {
		prog, err := cminor.Parse("violation.c", v.source, reg.Names())
		if err != nil {
			log.Fatal(err)
		}
		res := checker.Check(prog, reg)
		fmt.Printf("- %s:\n", v.title)
		for _, d := range res.Diags {
			fmt.Printf("    %s\n", d)
		}
		if len(res.Diags) == 0 {
			fmt.Println("    UNEXPECTEDLY CLEAN")
		}
	}

	// Section 2.2.1's wished-for rule, granted: with the fresh assign
	// pattern, initializing from a procedure that returns a unique local
	// validates.
	fmt.Println("\n== the fresh extension (section 2.2.1) ==")
	freshProg := `
struct dfastate { int n; };
struct dfastate* unique dfa;
struct dfastate* parse_dfa() {
  struct dfastate* unique d;
  d = (struct dfastate*)malloc(sizeof(struct dfastate));
  return d;
}
void init() {
  dfa = parse_dfa();
}
`
	p1, err := cminor.Parse("callinit.c", freshProg, reg.Names())
	if err != nil {
		log.Fatal(err)
	}
	r1 := checker.Check(p1, reg)
	fmt.Printf("figure 5's unique:        %d warning(s) (call results match no assign rule)\n", len(r1.Diags))
	p2, err := cminor.Parse("callinit.c", freshProg, freshReg.Names())
	if err != nil {
		log.Fatal(err)
	}
	r2 := checker.Check(p2, freshReg)
	fmt.Printf("unique with fresh:        %d warning(s)\n", len(r2.Diags))
}

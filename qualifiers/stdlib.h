/* Alternate library signatures (the paper's section 3.3 header-replacement
 * mechanism): prepend with `qualcheck -header qualifiers/stdlib.h ...` so
 * library calls are checked against annotated types. Uses the standard
 * registry (nonnull + untainted); for the -taint configuration use
 * qualifiers/taint.h instead. */

int printf(char * untainted nonnull format, ...);
int fprintf(int stream, char * untainted nonnull format, ...);
int syslog(int priority, char * untainted nonnull format, ...);
int puts(char* nonnull s);
int putchar(int c);
int strlen(char* nonnull s);
void exit(int code);
void abort();

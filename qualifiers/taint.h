/* Alternate library signatures for the taintedness configuration (use with
 * `qualcheck -taint -header qualifiers/taint.h ...`). With the
 * constants-are-trusted clause loaded, string-literal formats need no
 * casts (section 6.3). */

int printf(char * untainted format, ...);
int fprintf(int stream, char * untainted format, ...);
int syslog(int priority, char * untainted format, ...);
int sendstrf(int sock, char * untainted format, ...);
int error(char * untainted format, ...);
int puts(char* s);
int putchar(int c);
int strlen(char* s);
void exit(int code);
void abort();
